package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Runtime is the per-node controller of the paper's §3: it sequences the
// program execution on one cluster node according to the flow graphs and
// thread collections, creates thread instances lazily, dispatches incoming
// tokens, and maintains split-side group state (flow-control windows and
// load-balancing credits).
type Runtime struct {
	app     *App
	tr      transport.Transport
	name    string
	nodeIdx int

	groupSeq atomic.Uint64

	stats statCounters

	mu      sync.Mutex
	threads map[instKey]*threadInstance
	splits  map[uint64]*splitGroup
	credits map[creditKey]*creditTracker
}

// instKey identifies a thread instance without building a string key on
// every dispatch.
type instKey struct {
	collection string
	index      int
}

type creditKey struct {
	graph string
	node  int
}

// creditTracker counts tokens dispatched to each thread of a collection and
// not yet acknowledged by the downstream merge — the feedback information
// the paper uses for load balancing. The counter slice is sized once from
// the collection's cardinality at creation; charge only grows it in the
// exceptional case of a collection remapped wider afterwards.
type creditTracker struct {
	mu  sync.Mutex
	out []int
}

func newCreditTracker(threads int) *creditTracker {
	return &creditTracker{out: make([]int, threads)}
}

func (ct *creditTracker) charge(i int) {
	ct.mu.Lock()
	for len(ct.out) <= i {
		ct.out = append(ct.out, 0)
	}
	ct.out[i]++
	ct.mu.Unlock()
}

func (ct *creditTracker) release(i int) {
	ct.mu.Lock()
	if i >= 0 && i < len(ct.out) && ct.out[i] > 0 {
		ct.out[i]--
	}
	ct.mu.Unlock()
}

func (ct *creditTracker) outstanding(i int) int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if i < 0 || i >= len(ct.out) {
		return 0
	}
	return ct.out[i]
}

// splitGroup is the split-side state of one open group: the flow-control
// window and the identity of the paired merge instance.
type splitGroup struct {
	mu   sync.Mutex
	cond *sync.Cond

	id          uint64
	graph       *Flowgraph
	opener      int // graph node that opened the group
	closer      int // paired merge/stream node
	window      int
	posted      int
	acked       int
	done        bool // opener's execute returned
	mergeThread int  // -1 until the first token fixes the instance
}

func newSplitGroup(id uint64, g *Flowgraph, opener int, window int) *splitGroup {
	sg := &splitGroup{
		id:          id,
		graph:       g,
		opener:      opener,
		closer:      g.closerOf[opener],
		window:      window,
		mergeThread: -1,
	}
	sg.cond = sync.NewCond(&sg.mu)
	return sg
}

// mergeGroup is the merge-side state of one group on a thread instance.
type mergeGroup struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf      []bufferedToken
	started  bool
	received int
	consumed int
	total    int // -1 while unknown
}

type bufferedToken struct {
	tok        Token
	lastWorker int
	creditNode int
	origin     string
	groupID    uint64
}

func newMergeGroup() *mergeGroup {
	mg := &mergeGroup{total: -1}
	mg.cond = sync.NewCond(&mg.mu)
	return mg
}

// threadInstance is one DPS thread: user state plus a FIFO execution lock
// serializing the operation bodies that run on it, and the work queue its
// dispatcher loop drains.
type threadInstance struct {
	rt    *Runtime
	tc    *ThreadCollection
	index int
	state any
	lock  fifoLock

	mu     sync.Mutex
	groups map[uint64]*mergeGroup

	// Dispatch queue. Arriving tokens are appended as plain work items and
	// executed by a single drainer goroutine, instead of spawning one
	// goroutine per token. The drainer role hands off whenever the running
	// operation blocks (releasing the FIFO lock), so the paper's
	// progress-while-stalled semantics are preserved; see drain and
	// Ctx.yieldInstLock.
	qmu      sync.Mutex
	queue    []workItem
	draining bool
}

// workItem is one queued execution: a token delivered to a leaf/split, or
// the first token of a group starting a merge/stream collector. The ticket
// is reserved at enqueue time, under qmu, so queue order and FIFO-lock
// grant order always agree.
type workItem struct {
	g         *Flowgraph
	node      *GraphNode
	env       *envelope
	bt        bufferedToken
	mg        *mergeGroup
	collector bool
	tk        ticket
}

// maxInstanceQueue bounds the per-instance dispatch queue. Beyond it the
// dispatcher degrades to the direct goroutine-per-token scheme rather than
// blocking the poster (the per-split flow-control window is the real
// bound on tokens in flight; this is a memory backstop).
const maxInstanceQueue = 1024

// enqueue reserves the execution ticket and queues the item, starting a
// drainer goroutine if none currently holds the role.
func (rt *Runtime) enqueue(inst *threadInstance, it workItem) {
	inst.qmu.Lock()
	it.tk = inst.lock.reserve()
	if len(inst.queue) >= maxInstanceQueue {
		inst.qmu.Unlock()
		go rt.runItem(inst, it, false)
		return
	}
	inst.queue = append(inst.queue, it)
	spawn := !inst.draining
	if spawn {
		inst.draining = true
	}
	inst.qmu.Unlock()
	if spawn {
		go rt.drain(inst)
	}
}

// drain is the per-thread-instance worker loop: it pops queued executions
// and runs them inline. At most one goroutine holds the drainer role at a
// time; if the running operation blocks mid-execution it relinquishes the
// role (spawning a successor when work is queued), and on return this loop
// reclaims the role only if no successor is active.
func (rt *Runtime) drain(inst *threadInstance) {
	for {
		inst.qmu.Lock()
		if len(inst.queue) == 0 {
			inst.draining = false
			inst.qmu.Unlock()
			return
		}
		it := inst.queue[0]
		inst.queue[0] = workItem{}
		inst.queue = inst.queue[1:]
		inst.qmu.Unlock()
		if !rt.runItem(inst, it, true) {
			// The operation yielded; the drainer role moved on.
			inst.qmu.Lock()
			if inst.draining {
				inst.qmu.Unlock()
				return
			}
			inst.draining = true
			inst.qmu.Unlock()
		}
	}
}

// relinquishDrainer hands the drainer role off before the holder blocks:
// queued work continues on a fresh goroutine, an empty queue just releases
// the role for the next enqueue.
func (inst *threadInstance) relinquishDrainer(rt *Runtime) {
	inst.qmu.Lock()
	if len(inst.queue) > 0 {
		inst.qmu.Unlock()
		go rt.drain(inst)
		return
	}
	inst.draining = false
	inst.qmu.Unlock()
}

// runItem executes one queued item, reporting whether the caller still
// holds the drainer role afterwards.
func (rt *Runtime) runItem(inst *threadInstance, it workItem, fromDrainer bool) bool {
	if it.collector {
		return rt.runCollector(inst, it, fromDrainer)
	}
	return rt.runSimple(inst, it, fromDrainer)
}

func newRuntime(app *App, tr transport.Transport, idx int) *Runtime {
	return &Runtime{
		app:     app,
		tr:      tr,
		name:    tr.Local(),
		nodeIdx: idx,
		threads: make(map[instKey]*threadInstance),
		splits:  make(map[uint64]*splitGroup),
		credits: make(map[creditKey]*creditTracker),
	}
}

// Name returns the cluster node name this runtime controls.
func (rt *Runtime) Name() string { return rt.name }

func (rt *Runtime) newGroupID() uint64 {
	return uint64(rt.nodeIdx)<<48 | (rt.groupSeq.Add(1) & (1<<48 - 1))
}

// instance returns (creating lazily) the local thread instance of tc with
// the given index, verifying the mapping places it on this node.
func (rt *Runtime) instance(tc *ThreadCollection, index int) (*threadInstance, error) {
	node, err := tc.NodeOf(index)
	if err != nil {
		return nil, err
	}
	if node != rt.name {
		return nil, fmt.Errorf("dps: thread %s[%d] is mapped to %q, not %q", tc.Name(), index, node, rt.name)
	}
	key := instKey{collection: tc.Name(), index: index}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if inst, ok := rt.threads[key]; ok {
		return inst, nil
	}
	inst := &threadInstance{
		rt:     rt,
		tc:     tc,
		index:  index,
		state:  tc.newState(),
		groups: make(map[uint64]*mergeGroup),
	}
	rt.threads[key] = inst
	return inst, nil
}

// tracker returns (creating presized to threads, if needed) the credit
// tracker of one graph node's collection.
func (rt *Runtime) tracker(graph string, node int, threads int) *creditTracker {
	key := creditKey{graph: graph, node: node}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ct, ok := rt.credits[key]
	if !ok {
		ct = newCreditTracker(threads)
		rt.credits[key] = ct
	}
	return ct
}

// handleMessage is the transport receive entry point. Per the transport
// ownership contract the payload belongs to this handler once invoked;
// every decoded field is copied out, so the buffer is recycled into the
// wire pool before returning.
func (rt *Runtime) handleMessage(src string, payload []byte) {
	if len(payload) == 0 {
		rt.app.fail(fmt.Errorf("dps: empty message from %q", src))
		return
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case msgToken:
		env, err := decodeEnvelope(body)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: bad token message from %q: %w", src, err))
			return
		}
		tok, _, err := rt.app.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			rt.app.fail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		putWireBuf(payload)
		rt.dispatchLocal(env)
		return
	case msgGroupEnd:
		m, err := decodeGroupEnd(body)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: bad group-end from %q: %w", src, err))
			return
		}
		rt.handleGroupEnd(m)
	case msgAck:
		m, err := decodeAck(body)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: bad ack from %q: %w", src, err))
			return
		}
		rt.handleAck(m)
	case msgResult:
		m, err := decodeResult(body)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: bad result from %q: %w", src, err))
			return
		}
		tok, _, err := rt.app.reg.Unmarshal(m.Payload)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: cannot deserialize result: %w", err))
			return
		}
		putWireBuf(payload)
		rt.app.completeCall(m.CallID, CallResult{Value: tok})
		return
	default:
		rt.app.fail(fmt.Errorf("dps: unknown message kind %d from %q", kind, src))
		return
	}
	putWireBuf(payload)
}

// dispatchLocal hands an envelope (token decoded) to its destination thread
// on this node.
func (rt *Runtime) dispatchLocal(env *envelope) {
	g, ok := rt.app.Graph(env.Graph)
	if !ok {
		rt.app.fail(fmt.Errorf("dps: unknown graph %q", env.Graph))
		return
	}
	if env.Node < 0 || env.Node >= len(g.nodes) {
		rt.app.fail(fmt.Errorf("dps: graph %q has no node %d", env.Graph, env.Node))
		return
	}
	node := g.nodes[env.Node]
	inst, err := rt.instance(node.tc, env.Thread)
	if err != nil {
		rt.app.fail(err)
		return
	}
	switch node.op.kind {
	case KindLeaf, KindSplit:
		rt.enqueue(inst, workItem{g: g, node: node, env: env})
	case KindMerge, KindStream:
		rt.deliverToGroup(inst, g, node, env)
	}
}

// runSimple executes a leaf or split operation body, reporting whether the
// calling goroutine still holds the drainer role afterwards.
func (rt *Runtime) runSimple(inst *threadInstance, it workItem, fromDrainer bool) (still bool) {
	g, node, env := it.g, it.node, it.env
	c := &Ctx{rt: rt, inst: inst, graph: g, node: node, env: env, drainer: fromDrainer}
	defer func() { still = c.drainer }()
	it.tk.wait()
	defer inst.lock.unlock()
	defer rt.recoverOp(g, node)

	if node.op.kind == KindSplit {
		sg := newSplitGroup(rt.newGroupID(), g, node.id, rt.app.cfg.window())
		rt.mu.Lock()
		rt.splits[sg.id] = sg
		rt.mu.Unlock()
		rt.stats.groupsOpened.Add(1)
		c.sg = sg
	}
	x := &exec{
		ctx: c,
		in:  env.Token,
		next: func() (Token, bool) {
			panic(opError{fmt.Errorf("dps: %s %q must not call next", node.op.kind, node.op.name)})
		},
		post: c.postOut,
	}
	node.op.run(x)
	rt.finishOpener(c)
	if node.op.kind == KindLeaf && c.postSeq != 1 {
		panic(opError{fmt.Errorf("dps: leaf %q posted %d tokens; a leaf posts exactly one", node.op.name, c.postSeq)})
	}
	c.env = nil
	putEnvelope(env)
	return
}

// finishOpener closes the group opened by a split or stream execution:
// announces the total to the paired merge instance and enforces the
// at-least-one-token rule.
func (rt *Runtime) finishOpener(c *Ctx) {
	sg := c.sg
	if sg == nil {
		return
	}
	sg.mu.Lock()
	posted := sg.posted
	mergeThread := sg.mergeThread
	sg.done = true
	sg.mu.Unlock()
	if posted == 0 {
		panic(opError{fmt.Errorf("dps: %s %q posted no tokens for its group", c.node.op.kind, c.node.op.name)})
	}
	closerNode := sg.graph.nodes[sg.closer]
	end := &groupEndMsg{
		Graph:   sg.graph.name,
		Node:    sg.closer,
		Thread:  mergeThread,
		GroupID: sg.id,
		Total:   posted,
	}
	target, err := closerNode.tc.NodeOf(mergeThread)
	if err != nil {
		panic(opError{err})
	}
	if target == rt.name {
		rt.handleGroupEnd(end)
	} else if err := rt.tr.Send(target, appendGroupEnd(getWireBuf(), end)); err != nil {
		panic(opError{err})
	}
	rt.maybeReapSplit(sg)
}

// sendSafe is send for non-operation goroutines (graph calls): it converts
// the panic-based error propagation into an error return.
func (rt *Runtime) sendSafe(env *envelope, targetNode string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if oe, ok := r.(opError); ok {
				err = oe.err
				return
			}
			panic(r)
		}
	}()
	rt.send(env, targetNode)
	return nil
}

// abortLocal wakes every blocked wait on this node so operations observe
// the application failure and unwind.
func (rt *Runtime) abortLocal() {
	rt.mu.Lock()
	splits := make([]*splitGroup, 0, len(rt.splits))
	for _, sg := range rt.splits {
		splits = append(splits, sg)
	}
	insts := make([]*threadInstance, 0, len(rt.threads))
	for _, inst := range rt.threads {
		insts = append(insts, inst)
	}
	rt.mu.Unlock()
	for _, sg := range splits {
		sg.mu.Lock()
		sg.cond.Broadcast()
		sg.mu.Unlock()
	}
	for _, inst := range insts {
		inst.mu.Lock()
		groups := make([]*mergeGroup, 0, len(inst.groups))
		for _, mg := range inst.groups {
			groups = append(groups, mg)
		}
		inst.mu.Unlock()
		for _, mg := range groups {
			mg.mu.Lock()
			mg.cond.Broadcast()
			mg.mu.Unlock()
		}
	}
}

// deliverToGroup buffers a token for (or starts) the merge/stream execution
// of its group on the destination thread.
func (rt *Runtime) deliverToGroup(inst *threadInstance, g *Flowgraph, node *GraphNode, env *envelope) {
	fr, ok := env.topFrame()
	if !ok {
		rt.app.fail(fmt.Errorf("dps: token reached %s %q with an empty frame stack", node.op.kind, node.op.name))
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[fr.GroupID]
	if !ok {
		mg = newMergeGroup()
		inst.groups[fr.GroupID] = mg
	}
	inst.mu.Unlock()

	bt := bufferedToken{
		tok:        env.Token,
		lastWorker: env.LastWorker,
		creditNode: env.CreditNode,
		origin:     fr.Origin,
		groupID:    fr.GroupID,
	}
	mg.mu.Lock()
	mg.received++
	if !mg.started {
		mg.started = true
		mg.mu.Unlock()
		rt.enqueue(inst, workItem{g: g, node: node, env: env, bt: bt, mg: mg, collector: true})
		return
	}
	mg.buf = append(mg.buf, bt)
	mg.cond.Broadcast()
	mg.mu.Unlock()
	// The token and accounting fields now live in bt; the wrapper is free.
	putEnvelope(env)
}

// runCollector executes a merge or stream body for one group, fed by the
// group's buffer. It reports whether the calling goroutine still holds the
// drainer role afterwards.
func (rt *Runtime) runCollector(inst *threadInstance, it workItem, fromDrainer bool) (still bool) {
	g, node, firstEnv, first, mg := it.g, it.node, it.env, it.bt, it.mg
	c := &Ctx{rt: rt, inst: inst, graph: g, node: node, env: firstEnv, mg: mg, drainer: fromDrainer}
	defer func() { still = c.drainer }()
	it.tk.wait()
	defer inst.lock.unlock()
	defer rt.recoverOp(g, node)
	if node.op.kind == KindStream {
		sg := newSplitGroup(rt.newGroupID(), g, node.id, rt.app.cfg.window())
		rt.mu.Lock()
		rt.splits[sg.id] = sg
		rt.mu.Unlock()
		rt.stats.groupsOpened.Add(1)
		c.sg = sg
	}
	// The first token counts as consumed when the execution starts.
	rt.ackConsumed(first)
	mg.mu.Lock()
	mg.consumed++
	mg.mu.Unlock()

	x := &exec{
		ctx:  c,
		in:   first.tok,
		next: c.nextIn,
		post: c.postOut,
	}
	node.op.run(x)

	// Drain-check: the operation must have consumed its whole group.
	mg.mu.Lock()
	complete := mg.total >= 0 && mg.consumed == mg.total
	mg.mu.Unlock()
	if !complete {
		panic(opError{fmt.Errorf("dps: %s %q returned before consuming its group (use next until it reports false)", node.op.kind, node.op.name)})
	}
	rt.finishOpener(c)
	if node.op.kind == KindMerge && c.postSeq != 1 {
		panic(opError{fmt.Errorf("dps: merge %q posted %d tokens; a merge posts exactly one", node.op.name, c.postSeq)})
	}
	fr, _ := firstEnv.topFrame()
	inst.mu.Lock()
	delete(inst.groups, fr.GroupID)
	inst.mu.Unlock()
	c.env = nil
	putEnvelope(firstEnv)
	return
}

// ackConsumed notifies the split-side node that one token of a group has
// been consumed by the merge, releasing flow-control window space and
// load-balancing credits.
func (rt *Runtime) ackConsumed(bt bufferedToken) {
	rt.stats.acksSent.Add(1)
	m := &ackMsg{GroupID: bt.groupID, Worker: bt.lastWorker, RouteNode: bt.creditNode}
	if bt.origin == rt.name {
		rt.handleAck(m)
		return
	}
	if err := rt.tr.Send(bt.origin, appendAck(getWireBuf(), m)); err != nil {
		rt.app.fail(err)
	}
}

func (rt *Runtime) handleAck(m *ackMsg) {
	rt.mu.Lock()
	sg := rt.splits[m.GroupID]
	rt.mu.Unlock()
	if sg != nil {
		sg.mu.Lock()
		sg.acked++
		sg.cond.Broadcast()
		sg.mu.Unlock()
		rt.maybeReapSplit(sg)
		if m.RouteNode >= 0 && m.RouteNode < len(sg.graph.nodes) {
			threads := sg.graph.nodes[m.RouteNode].tc.ThreadCount()
			rt.tracker(sg.graph.name, m.RouteNode, threads).release(m.Worker)
		}
	}
}

func (rt *Runtime) maybeReapSplit(sg *splitGroup) {
	sg.mu.Lock()
	reap := sg.done && sg.acked >= sg.posted
	sg.mu.Unlock()
	if reap {
		rt.mu.Lock()
		delete(rt.splits, sg.id)
		rt.mu.Unlock()
	}
}

func (rt *Runtime) handleGroupEnd(m *groupEndMsg) {
	g, ok := rt.app.Graph(m.Graph)
	if !ok {
		rt.app.fail(fmt.Errorf("dps: group-end for unknown graph %q", m.Graph))
		return
	}
	node := g.nodes[m.Node]
	inst, err := rt.instance(node.tc, m.Thread)
	if err != nil {
		rt.app.fail(err)
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[m.GroupID]
	if !ok {
		mg = newMergeGroup()
		inst.groups[m.GroupID] = mg
	}
	inst.mu.Unlock()
	mg.mu.Lock()
	mg.total = m.Total
	mg.cond.Broadcast()
	mg.mu.Unlock()
}

// sendResult delivers a graph's final output to the caller.
func (rt *Runtime) sendResult(env *envelope, tok Token) {
	if env.CallOrigin == rt.name {
		if rt.app.cfg.ForceSerialize {
			payload, err := rt.app.reg.Marshal(tok)
			if err != nil {
				panic(opError{fmt.Errorf("dps: cannot serialize result: %w", err)})
			}
			out, _, err := rt.app.reg.Unmarshal(payload)
			if err != nil {
				panic(opError{fmt.Errorf("dps: cannot deserialize result: %w", err)})
			}
			tok = out
		}
		rt.stats.callsCompleted.Add(1)
		rt.app.completeCall(env.CallID, CallResult{Value: tok})
		return
	}
	// Serialize the result straight after the message header into a pooled
	// buffer (single copy, mirroring the token path).
	buf := appendResultHeader(getWireBuf(), env.CallID)
	buf, err := rt.app.reg.Append(buf, tok)
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize result: %w", err)})
	}
	if err := rt.tr.Send(env.CallOrigin, buf); err != nil {
		panic(opError{err})
	}
}

// send routes an envelope toward the node hosting its destination thread.
func (rt *Runtime) send(env *envelope, targetNode string) {
	rt.stats.tokensPosted.Add(1)
	if targetNode == rt.name && !rt.app.cfg.ForceSerialize {
		// Same address space: transfer the pointer directly, bypassing the
		// communication layer (paper §4).
		rt.stats.tokensLocal.Add(1)
		rt.dispatchLocal(env)
		return
	}
	if targetNode == rt.name {
		// ForceSerialize: full marshalling, then local delivery.
		payload, err := rt.app.reg.Marshal(env.Token)
		if err != nil {
			panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
		}
		tok, _, err := rt.app.reg.Unmarshal(payload)
		if err != nil {
			panic(opError{fmt.Errorf("dps: cannot deserialize %T: %w", env.Token, err)})
		}
		env.Payload = payload
		env.Token = tok
		rt.dispatchLocal(env)
		return
	}
	// The token is serialized straight into a pooled wire buffer after the
	// envelope header (single copy); the receiving runtime recycles the
	// buffer once decoded.
	buf := appendEnvelopeHeader(getWireBuf(), env)
	buf, err := rt.app.reg.Append(buf, env.Token)
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
	}
	rt.stats.tokensRemote.Add(1)
	rt.stats.bytesSent.Add(int64(len(buf)))
	if err := rt.tr.Send(targetNode, buf); err != nil {
		panic(opError{err})
	}
	putEnvelope(env)
}

// opError wraps runtime failures raised inside operation executions so the
// recovery handler can distinguish them from program bugs (both abort the
// application, but opErrors carry cleaner messages).
type opError struct{ err error }

func (rt *Runtime) recoverOp(g *Flowgraph, node *GraphNode) {
	r := recover()
	if r == nil {
		return
	}
	if oe, ok := r.(opError); ok {
		rt.app.fail(fmt.Errorf("graph %q, operation %q: %w", g.name, node.op.name, oe.err))
		return
	}
	rt.app.fail(fmt.Errorf("dps: panic in graph %q, operation %q: %v", g.name, node.op.name, r))
}
