package core_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
)

// Tokens and state of the fault-tolerance tests.

type FTOrder struct {
	Base, N int
}

type FTItem struct {
	Worker int
	Value  int
}

type FTDone struct {
	Sum int64
	N   int
}

type FTProbe struct{ Worker int }

type FTWorkerState struct {
	Count int
	Sum   int64
}

var (
	_ = serial.MustRegister[FTOrder]()
	_ = serial.MustRegister[FTItem]()
	_ = serial.MustRegister[FTDone]()
	_ = serial.MustRegister[FTProbe]()
	_ = serial.MustRegister[FTWorkerState]()
)

// ftHarness is a split→stateful-leaf→merge pipeline over a simulated
// cluster, with collector stages on the master node (the fault-tolerance
// placement rule) and stateful workers spread over the other nodes.
type ftHarness struct {
	app     *core.App
	net     *simnet.Network
	workers *core.ThreadCollection
	work    *core.Flowgraph
	probe   *core.Flowgraph
}

func newFTHarness(t *testing.T, cfg core.Config, workerMap string, nodes ...string) *ftHarness {
	t.Helper()
	net := simnet.New(simnet.Config{Latency: 100 * time.Microsecond, PerMessage: 10 * time.Microsecond})
	app, err := core.NewSimApp(cfg, net, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: the application must shut down before its fabric, or teardown
	// traffic reads as node deaths.
	t.Cleanup(net.Close)
	t.Cleanup(app.Close)

	main := core.MustCollection[struct{}](app, "ft-main")
	if err := main.MapNodes(nodes[0]); err != nil {
		t.Fatal(err)
	}
	workers := core.MustCollection[FTWorkerState](app, "ft-workers")
	if err := workers.Map(workerMap); err != nil {
		t.Fatal(err)
	}

	split := core.Split[*FTOrder, *FTItem]("ft-split",
		func(c *core.Ctx, in *FTOrder, post func(*FTItem)) {
			for i := 0; i < in.N; i++ {
				post(&FTItem{Worker: i % workers.ThreadCount(), Value: in.Base + i})
			}
		})
	work := core.Leaf[*FTItem, *FTItem]("ft-work",
		func(c *core.Ctx, in *FTItem) *FTItem {
			st := core.StateOf[FTWorkerState](c)
			st.Count++
			st.Sum += int64(in.Value)
			return in
		})
	merge := core.Merge[*FTItem, *FTDone]("ft-merge",
		func(c *core.Ctx, first *FTItem, next func() (*FTItem, bool)) *FTDone {
			out := &FTDone{}
			for in, ok := first, true; ok; in, ok = next() {
				out.Sum += int64(in.Value)
				out.N++
			}
			return out
		})
	h := &ftHarness{app: app, net: net, workers: workers}
	h.work, err = app.NewFlowgraph("ft-work-graph", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(work, workers, core.ByKey[*FTItem]("ft-to-worker", func(in *FTItem) int { return in.Worker })),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	// probe reads every worker's private state, so tests can assert the
	// exactly-once invariant after recovery.
	probeSplit := core.Split[*FTOrder, *FTProbe]("ft-probe-split",
		func(c *core.Ctx, in *FTOrder, post func(*FTProbe)) {
			for i := 0; i < workers.ThreadCount(); i++ {
				post(&FTProbe{Worker: i})
			}
		})
	probeLeaf := core.Leaf[*FTProbe, *FTItem]("ft-probe-read",
		func(c *core.Ctx, in *FTProbe) *FTItem {
			st := core.StateOf[FTWorkerState](c)
			return &FTItem{Worker: st.Count, Value: int(st.Sum)}
		})
	probeMerge := core.Merge[*FTItem, *FTDone]("ft-probe-merge",
		func(c *core.Ctx, first *FTItem, next func() (*FTItem, bool)) *FTDone {
			out := &FTDone{}
			for in, ok := first, true; ok; in, ok = next() {
				out.N += in.Worker
				out.Sum += int64(in.Value)
			}
			return out
		})
	h.probe, err = app.NewFlowgraph("ft-probe-graph", core.Path(
		core.NewNode(probeSplit, main, core.MainRoute()),
		core.NewNode(probeLeaf, workers, core.ByKey[*FTProbe]("ft-to-probe", func(in *FTProbe) int { return in.Worker })),
		core.NewNode(probeMerge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// expectSums runs one work call and checks its merge output.
func (h *ftHarness) call(t *testing.T, base, n int) {
	t.Helper()
	out, err := h.work.Call(context.Background(), &FTOrder{Base: base, N: n})
	if err != nil {
		t.Fatalf("call(base=%d): %v", base, err)
	}
	done := out.(*FTDone)
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(base + i)
	}
	if done.N != n || done.Sum != want {
		t.Fatalf("call(base=%d): got N=%d Sum=%d, want N=%d Sum=%d", base, done.N, done.Sum, n, want)
	}
}

// TestFailoverExactlyOnce crashes a worker node between calls and checks
// that every call completes and the per-worker state reflects each token
// exactly once, with the crashed node's threads restored from checkpoints.
func TestFailoverExactlyOnce(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 2 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	const rounds, perCall = 30, 16
	wantTotal := int64(0)
	for r := 0; r < rounds; r++ {
		base := r * 1000
		h.call(t, base, perCall)
		for i := 0; i < perCall; i++ {
			wantTotal += int64(base + i)
		}
		if r == rounds/2 {
			// Let a checkpoint land, then kill w2 abruptly.
			time.Sleep(3 * cfg.Checkpoint)
			if !h.net.Crash("w2") {
				t.Fatal("crash failed")
			}
		}
	}
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}

	out, err := h.probe.Call(context.Background(), &FTOrder{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	got := out.(*FTDone)
	if got.N != rounds*perCall {
		t.Errorf("workers processed %d tokens, want %d (exactly-once violated)", got.N, rounds*perCall)
	}
	if got.Sum != wantTotal {
		t.Errorf("workers accumulated %d, want %d", got.Sum, wantTotal)
	}

	s := h.app.Stats()
	if s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
	if s.CheckpointsTaken == 0 {
		t.Error("no checkpoints were taken")
	}
	for i := 0; i < h.workers.ThreadCount(); i++ {
		node, err := h.workers.NodeOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if node == "w2" {
			t.Errorf("thread %d still placed on the dead node", i)
		}
	}
}

// TestFailoverMidCall crashes the worker node while calls are in flight:
// the calls must still complete (in-flight tokens replayed onto the
// survivors) and exactly-once must hold.
func TestFailoverMidCall(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 2 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	const rounds, perCall = 40, 12
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		h.net.Crash("w2")
	}()
	wantTotal := int64(0)
	for r := 0; r < rounds; r++ {
		base := r * 1000
		h.call(t, base, perCall)
		for i := 0; i < perCall; i++ {
			wantTotal += int64(base + i)
		}
	}
	wg.Wait()
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	out, err := h.probe.Call(context.Background(), &FTOrder{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	got := out.(*FTDone)
	if got.N != rounds*perCall {
		t.Errorf("workers processed %d tokens, want %d (exactly-once violated)", got.N, rounds*perCall)
	}
	if got.Sum != wantTotal {
		t.Errorf("workers accumulated %d, want %d", got.Sum, wantTotal)
	}
	if s := h.app.Stats(); s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
}

// TestFailNodeManual exercises the explicit detector entry point: FailNode
// recovers a healthy-but-unreachable node's threads and rejects the master.
func TestFailNodeManual(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 5 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	h.call(t, 0, 8)
	if err := h.app.FailNode("m"); err == nil {
		t.Fatal("failing the master must be rejected")
	}
	if err := h.app.FailNode("w1"); err != nil {
		t.Fatalf("FailNode(w1): %v", err)
	}
	// Idempotent: a second report folds into the first recovery.
	if err := h.app.FailNode("w1"); err != nil {
		t.Fatalf("second FailNode(w1): %v", err)
	}
	h.call(t, 5000, 8)
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	for i := 0; i < h.workers.ThreadCount(); i++ {
		node, err := h.workers.NodeOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if node == "w1" {
			t.Errorf("thread %d still placed on the failed node", i)
		}
	}
	if s := h.app.Stats(); s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
}

// TestFTDisabledUntouched confirms the layer stays inert without
// Config.Checkpoint: no checkpoints, no replay, and FailNode refuses.
func TestFTDisabledUntouched(t *testing.T) {
	h := newFTHarness(t, core.Config{Window: 4}, "w1*2 w2*2", "m", "w1", "w2")
	h.call(t, 0, 8)
	s := h.app.Stats()
	if s.CheckpointsTaken != 0 || s.TokensReplayed != 0 || s.FailoversCompleted != 0 {
		t.Errorf("fault-tolerance counters moved while disabled: %+v", s)
	}
	if err := h.app.FailNode("w1"); err == nil {
		t.Fatal("FailNode must require Config.Checkpoint")
	}
}

// TestFailoverWithoutCheckpointHistory crashes a worker before any
// checkpoint interval elapsed: recovery must rebuild the lost state by
// full replay of the retained logs.
func TestFailoverWithoutCheckpointHistory(t *testing.T) {
	// A very long interval: no checkpoint will be captured during the test.
	cfg := core.Config{Window: 4, Checkpoint: time.Hour}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	wantTotal := int64(0)
	const rounds, perCall = 10, 8
	for r := 0; r < rounds; r++ {
		base := r * 100
		h.call(t, base, perCall)
		for i := 0; i < perCall; i++ {
			wantTotal += int64(base + i)
		}
		if r == rounds/2 {
			h.net.Crash("w2")
		}
	}
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	out, err := h.probe.Call(context.Background(), &FTOrder{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	got := out.(*FTDone)
	if got.N != rounds*perCall || got.Sum != wantTotal {
		t.Errorf("workers processed N=%d Sum=%d, want N=%d Sum=%d", got.N, got.Sum, rounds*perCall, wantTotal)
	}
	s := h.app.Stats()
	if s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
	if s.CheckpointsTaken != 0 {
		t.Errorf("unexpected checkpoints: %d", s.CheckpointsTaken)
	}
	if s.TokensReplayed == 0 {
		t.Error("recovery without checkpoints must replay the full log")
	}
}

// TestOnRecoverCallback observes the failover re-placements.
func TestOnRecoverCallback(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 5 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1 w1 w2 w2", "m", "w1", "w2")

	var mu sync.Mutex
	moved := map[int]string{}
	h.workers.OnRecover(func(thread int, from, to string) {
		mu.Lock()
		defer mu.Unlock()
		if from != "w2" {
			t.Errorf("thread %d recovered from %q, want w2", thread, from)
		}
		moved[thread] = to
	})
	h.call(t, 0, 8)
	if err := h.app.FailNode("w2"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(moved) != 2 {
		t.Fatalf("OnRecover saw %d moves (%v), want 2", len(moved), moved)
	}
	for thread, to := range moved {
		if to == "w2" {
			t.Errorf("thread %d 'recovered' onto the dead node", thread)
		}
		if thread != 2 && thread != 3 {
			t.Errorf("unexpected thread %d recovered", thread)
		}
	}
}

// TestSendErrorSurfacesWithoutFT is the no-fault-tolerance contract: a
// transport send to a dead peer must surface as an engine-visible call and
// application error — never be dropped on the floor.
func TestSendErrorSurfacesWithoutFT(t *testing.T) {
	h := newFTHarness(t, core.Config{Window: 4}, "w1*2 w2*2", "m", "w1", "w2")
	h.call(t, 0, 8)
	h.net.Crash("w2")
	_, err := h.work.Call(context.Background(), &FTOrder{Base: 100, N: 8})
	if err == nil {
		t.Fatal("call through a dead node succeeded without fault tolerance")
	}
	if appErr := h.app.Err(); appErr == nil {
		t.Fatal("node death left no engine-visible application error")
	} else if !strings.Contains(appErr.Error(), "w2") && !strings.Contains(err.Error(), "w2") {
		t.Errorf("error does not name the dead peer: call=%v app=%v", err, appErr)
	}
}

// TestPartitionFeedsDetector cuts the master–worker link with fault
// tolerance on: the failed sends must feed the detector and recover the
// unreachable node's threads instead of failing the application.
func TestPartitionFeedsDetector(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 3 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")
	h.call(t, 0, 8)
	h.net.Partition("m", "w2")
	for r := 1; r < 8; r++ {
		h.call(t, r*100, 8)
	}
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	if s := h.app.Stats(); s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
	for i := 0; i < h.workers.ThreadCount(); i++ {
		if node, _ := h.workers.NodeOf(i); node == "w2" {
			t.Errorf("thread %d still placed on the partitioned node", i)
		}
	}
}
