package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSuspectGraceAbsorbsTransientFaults injects short bursts of send
// errors on the busy links of a checkpointed pipeline configured with a
// suspect grace window: every burst must be absorbed by in-grace retries
// — zero failovers, zero failed calls, exactly-once worker state — and
// the retries must show up in the stats.
func TestSuspectGraceAbsorbsTransientFaults(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 2 * time.Millisecond, SuspectGrace: 250 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	const rounds, perCall = 20, 16
	wantTotal := int64(0)
	for r := 0; r < rounds; r++ {
		if r%4 == 1 {
			// Burst on the split's outbound link and a worker's return
			// link — the hottest directions of this graph.
			h.net.FailNextSends("m", "w1", 3)
			h.net.FailNextSends("w2", "m", 2)
		}
		base := r * 1000
		h.call(t, base, perCall)
		for i := 0; i < perCall; i++ {
			wantTotal += int64(base + i)
		}
	}
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}

	out, err := h.probe.Call(context.Background(), &FTOrder{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	got := out.(*FTDone)
	if got.N != rounds*perCall || got.Sum != wantTotal {
		t.Errorf("workers saw N=%d Sum=%d, want N=%d Sum=%d (exactly-once violated)",
			got.N, got.Sum, rounds*perCall, wantTotal)
	}

	s := h.app.Stats()
	if s.FailoversCompleted != 0 {
		t.Errorf("transient faults escalated into %d failovers", s.FailoversCompleted)
	}
	if s.SendRetries == 0 {
		t.Error("no send retries recorded — the bursts were not absorbed by the grace window")
	}
	if injected := h.net.InjectedSendErrors(); injected == 0 {
		t.Error("no injected errors were consumed — the bursts landed on idle links")
	}
	t.Logf("absorbed %d injected errors with %d retries", h.net.InjectedSendErrors(), s.SendRetries)
}

// TestSuspectGraceCrashStillFailsOver: the grace window must delay, not
// disable, failure detection — a real crash exhausts the retries and the
// node fails over exactly once, with every call still completing.
func TestSuspectGraceCrashStillFailsOver(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 2 * time.Millisecond, SuspectGrace: 100 * time.Millisecond}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	const rounds, perCall = 16, 12
	wantTotal := int64(0)
	for r := 0; r < rounds; r++ {
		base := r * 1000
		h.call(t, base, perCall)
		for i := 0; i < perCall; i++ {
			wantTotal += int64(base + i)
		}
		if r == rounds/2 {
			time.Sleep(3 * cfg.Checkpoint)
			if !h.net.Crash("w2") {
				t.Fatal("crash failed")
			}
		}
	}
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}

	out, err := h.probe.Call(context.Background(), &FTOrder{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	got := out.(*FTDone)
	if got.N != rounds*perCall || got.Sum != wantTotal {
		t.Errorf("workers saw N=%d Sum=%d, want N=%d Sum=%d (exactly-once violated)",
			got.N, got.Sum, rounds*perCall, wantTotal)
	}
	s := h.app.Stats()
	if s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
	for i := 0; i < h.workers.ThreadCount(); i++ {
		node, err := h.workers.NodeOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if node == "w2" {
			t.Errorf("thread %d still placed on the dead node", i)
		}
	}
}
