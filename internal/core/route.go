package core

import (
	"fmt"
	"sync/atomic"
)

// RouteCtx is the information available to a routing function when it picks
// a destination thread index inside the target collection.
type RouteCtx struct {
	// ThreadCount is the number of threads in the target collection.
	ThreadCount int
	// Seq is a per-posting-context sequence number (0, 1, 2, ... for the
	// tokens posted by one operation execution), useful for round-robin.
	Seq int
	// Outstanding returns the number of tokens currently dispatched to
	// thread i of the target collection and not yet acknowledged by the
	// downstream merge. It powers the paper's load-balancing scheme; it
	// reports zero when no tracking is active for this edge.
	Outstanding func(i int) int
}

// Route selects the thread instance that will process a token, the
// equivalent of the paper's routing function classes and ROUTE macro.
type Route struct {
	name string
	pick func(tok Token, rc RouteCtx) int
}

// RouteFn builds a route from a function of the token and the routing
// context. The function must return an index in [0, ThreadCount).
func RouteFn(name string, pick func(tok Token, rc RouteCtx) int) *Route {
	return &Route{name: name, pick: pick}
}

// Name returns the route's name (used in DOT exports and errors).
func (r *Route) Name() string { return r.name }

// ToThread always routes to a fixed thread index; index 0 is the paper's
// "main thread" route.
func ToThread(i int) *Route {
	return &Route{
		name: fmt.Sprintf("to-thread-%d", i),
		pick: func(Token, RouteCtx) int { return i },
	}
}

// MainRoute routes every token to thread 0 of the target collection.
func MainRoute() *Route { return ToThread(0) }

// RoundRobin cycles through the threads of the target collection in posting
// order. Each RoundRobin value carries its own counter; reuse the same
// value on several graph nodes to interleave, or create one per node.
func RoundRobin() *Route {
	var ctr atomic.Int64
	return &Route{
		name: "round-robin",
		pick: func(_ Token, rc RouteCtx) int {
			if rc.ThreadCount == 0 {
				return 0
			}
			return int((ctr.Add(1) - 1) % int64(rc.ThreadCount))
		},
	}
}

// ByKey routes by a user-extracted integer key modulo the thread count,
// like the paper's currentToken->pos%threadCount() example.
func ByKey[In Token](name string, key func(in In) int) *Route {
	return &Route{
		name: name,
		pick: func(tok Token, rc RouteCtx) int {
			if rc.ThreadCount == 0 {
				return 0
			}
			k := key(tok.(In)) % rc.ThreadCount
			if k < 0 {
				k += rc.ThreadCount
			}
			return k
		},
	}
}

// LoadBalanced implements the paper's feedback-driven load balancing:
// tokens are sent to the thread with the fewest outstanding
// (un-acknowledged) tokens, preferring lower indices on ties. It requires
// the target node to sit between a split and its merge, which is where the
// runtime maintains outstanding counters from merge acknowledgements.
func LoadBalanced() *Route {
	return &Route{
		name: "load-balanced",
		pick: func(_ Token, rc RouteCtx) int {
			best, bestOut := 0, int(^uint(0)>>1)
			for i := 0; i < rc.ThreadCount; i++ {
				out := 0
				if rc.Outstanding != nil {
					out = rc.Outstanding(i)
				}
				if out < bestOut {
					best, bestOut = i, out
				}
			}
			return best
		},
	}
}
