package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
)

// Tokens and thread state of the migration tests. SeqToken (a sequenced
// payload) is shared with the sharded-scheduler tests.
type MigOrder struct {
	N int
}

type MigDone struct {
	N          int
	Violations int
	Sum        int64
}

// AccState is the migrating thread's private state: it checks per-instance
// FIFO order (every token must arrive in posting order, across any number
// of live remaps) and accumulates a sum that proves the state object itself
// travelled rather than being recreated.
type AccState struct {
	NextSeq    int
	Sum        int64
	Violations int
}

var (
	_ = serial.MustRegister[MigOrder]()
	_ = serial.MustRegister[MigDone]()
	_ = serial.MustRegister[AccState]()
)

// buildSeqGraph builds split(main) -> acc(leaf, stateful, 1 thread) ->
// merge(main): the single acc thread is the migration subject.
func buildSeqGraph(t testing.TB, app *core.App, name, mainNode, accNode string) (*core.Flowgraph, *core.ThreadCollection) {
	t.Helper()
	main := core.MustCollection[struct{}](app, name+"-main")
	if err := main.Map(mainNode); err != nil {
		t.Fatal(err)
	}
	acc := core.MustCollection[AccState](app, name+"-acc")
	if err := acc.Map(accNode); err != nil {
		t.Fatal(err)
	}

	split := core.Split[*MigOrder, *SeqToken](name+"-split",
		func(c *core.Ctx, in *MigOrder, post func(*SeqToken)) {
			for i := 0; i < in.N; i++ {
				post(&SeqToken{Seq: i})
			}
		})
	accOp := core.Leaf[*SeqToken, *SeqToken](name+"-acc",
		func(c *core.Ctx, in *SeqToken) *SeqToken {
			st := core.StateOf[AccState](c)
			if in.Seq != st.NextSeq {
				st.Violations++
			}
			st.NextSeq = in.Seq + 1
			st.Sum += int64(in.Seq)
			if in.Seq%128 == 127 {
				// Pace the stream so a mid-run test's migrations genuinely
				// interleave with traffic instead of racing a finished call.
				time.Sleep(time.Millisecond)
			}
			return in
		})
	merge := core.Merge[*SeqToken, *MigDone](name+"-merge",
		func(c *core.Ctx, first *SeqToken, next func() (*SeqToken, bool)) *MigDone {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &MigDone{N: n}
		})

	g, err := app.NewFlowgraph(name, core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(accOp, acc, core.MainRoute()),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	return g, acc
}

func TestRemapIdleMovesState(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	g, acc := buildSeqGraph(t, app, "remap-idle", "node0", "node1")

	out, err := g.Call(context.Background(), &MigOrder{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if out.(*MigDone).N != 100 {
		t.Fatalf("got %d tokens, want 100", out.(*MigDone).N)
	}
	if got, _ := acc.NodeOf(0); got != "node1" {
		t.Fatalf("acc thread on %q before remap", got)
	}
	epoch := acc.Epoch()

	if err := acc.Remap(context.Background(), "node0"); err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if got, _ := acc.NodeOf(0); got != "node0" {
		t.Fatalf("acc thread on %q after remap, want node0", got)
	}
	if acc.Epoch() <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, acc.Epoch())
	}

	// The state must have travelled with the thread: the reader runs on
	// node0 now and must see the sum and cursor of the pre-remap call.
	st := readState(t, app, acc)
	if st.NextSeq != 100 || st.Sum != 99*100/2 || st.Violations != 0 {
		t.Fatalf("migrated state = %+v, want NextSeq=100 Sum=4950 Violations=0", st)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("app failed: %v", err)
	}
	if s := app.Stats(); s.MigrationsCompleted != 1 || s.MigrationBytes == 0 {
		t.Fatalf("stats: migrations=%d bytes=%d, want 1 and >0", s.MigrationsCompleted, s.MigrationBytes)
	}
}

// TestRemapMidRun is the live-migration regression: a long call streams
// sequenced tokens through a stateful single-thread collection while the
// test remaps it back and forth between nodes. The call must not fail, the
// result must match the unmigrated run, and the thread must observe every
// token exactly once in posting order (per-instance FIFO preserved through
// holds, forwards and fences).
func TestRemapMidRun(t *testing.T) {
	variants := []struct {
		name string
		mk   func(t *testing.T) *core.App
	}{
		{"local", func(t *testing.T) *core.App {
			return newLocalApp(t, core.Config{Window: 64}, "node0", "node1", "node2")
		}},
		{"forceSerialize", func(t *testing.T) *core.App {
			return newLocalApp(t, core.Config{Window: 64, ForceSerialize: true}, "node0", "node1", "node2")
		}},
		{"simnet", func(t *testing.T) *core.App {
			// Modelled latency makes the fabric genuinely asynchronous: stale
			// tokens stay in flight long after the placement flip, the
			// hardest case for the fence handshake.
			net := simnet.New(simnet.GigabitEthernet())
			t.Cleanup(net.Close)
			app, err := core.NewSimApp(core.Config{Window: 64}, net, "node0", "node1", "node2")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(app.Close)
			return app
		}},
	}
	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			const tokens = 4000
			app := variant.mk(t)
			g, acc := buildSeqGraph(t, app, "remap-midrun", "node0", "node1")

			stop := make(chan struct{})
			done := make(chan struct{})
			var remaps atomic.Int64
			go func() {
				defer close(done)
				targets := []string{"node2", "node0", "node1"}
				for i := 0; ; i++ {
					select {
					case <-time.After(500 * time.Microsecond):
					case <-stop:
						return
					}
					if app.Err() != nil {
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					err := acc.Remap(ctx, targets[i%len(targets)])
					cancel()
					if err != nil {
						return
					}
					if remaps.Add(1) >= 30 {
						return // enough churn; let the call finish at full speed
					}
				}
			}()

			out, err := g.Call(context.Background(), &MigOrder{N: tokens})
			close(stop)
			<-done
			if err != nil {
				t.Fatalf("call failed across remap: %v", err)
			}
			if got := out.(*MigDone).N; got != tokens {
				t.Fatalf("merge saw %d tokens, want %d", got, tokens)
			}
			if err := app.Err(); err != nil {
				t.Fatalf("app failed: %v", err)
			}

			// Inspect the carried state: exactly `tokens` consumed, in order,
			// across every migration.
			st := readState(t, app, acc)
			if st.Violations != 0 {
				t.Fatalf("FIFO violations across remaps: %d", st.Violations)
			}
			if st.NextSeq != tokens {
				t.Fatalf("state cursor %d, want %d (tokens lost or duplicated)", st.NextSeq, tokens)
			}
			wantSum := int64(tokens) * int64(tokens-1) / 2
			if st.Sum != wantSum {
				t.Fatalf("state sum %d, want %d (state lost or duplicated)", st.Sum, wantSum)
			}
			if remaps.Load() == 0 {
				t.Fatal("no migration completed mid-run; the test exercised nothing")
			}
			t.Logf("completed with %d live remaps, forwarded=%d", remaps.Load(), app.Stats().TokensForwarded)
		})
	}
}

// readState reads the acc thread's state wherever it currently lives,
// through a reader graph registered on the same collection (one more graph
// call that executes on the thread and copies its state out).
func readState(t *testing.T, app *core.App, acc *core.ThreadCollection) *AccState {
	t.Helper()
	readG := buildStateReader(t, app, acc)
	if _, err := readG.Call(context.Background(), &MigOrder{N: 0}); err != nil {
		t.Fatalf("state read: %v", err)
	}
	return lastReadState.Load().(*AccState)
}

var lastReadState atomic.Value

var readerSeq atomic.Int64

// buildStateReader registers a tiny leaf graph on the acc collection that
// copies the thread state out for assertions.
func buildStateReader(t *testing.T, app *core.App, acc *core.ThreadCollection) *core.Flowgraph {
	t.Helper()
	n := readerSeq.Add(1)
	main := core.MustCollection[struct{}](app, fmt.Sprintf("reader-main-%d", n))
	if err := main.Map(app.MasterNode()); err != nil {
		t.Fatal(err)
	}
	read := core.Leaf[*MigOrder, *MigDone](fmt.Sprintf("reader-%d", n),
		func(c *core.Ctx, in *MigOrder) *MigDone {
			st := core.StateOf[AccState](c)
			cp := *st
			lastReadState.Store(&cp)
			return &MigDone{N: in.N, Violations: st.Violations, Sum: st.Sum}
		})
	g, err := app.NewFlowgraph(fmt.Sprintf("reader-%d", n), core.Path(
		core.NewNode(core.Leaf[*MigOrder, *MigOrder](fmt.Sprintf("reader-in-%d", n),
			func(c *core.Ctx, in *MigOrder) *MigOrder { return in }), main, core.MainRoute()),
		core.NewNode(read, acc, core.MainRoute()),
		core.NewNode(core.Leaf[*MigDone, *MigDone](fmt.Sprintf("reader-out-%d", n),
			func(c *core.Ctx, in *MigDone) *MigDone { return in }), main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMapRejectedWhileExecuting(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	main := core.MustCollection[struct{}](app, "busy-main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	work := core.MustCollection[struct{}](app, "busy-work")
	if err := work.Map("node1"); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	slow := core.Leaf[*MigOrder, *MigDone]("busy-slow",
		func(c *core.Ctx, in *MigOrder) *MigDone {
			<-release
			return &MigDone{N: in.N}
		})
	g, err := app.NewFlowgraph("busy", core.Path(
		core.NewNode(core.Leaf[*MigOrder, *MigOrder]("busy-in",
			func(c *core.Ctx, in *MigOrder) *MigOrder { return in }), main, core.MainRoute()),
		core.NewNode(slow, work, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := g.CallAsync(context.Background(), &MigOrder{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the call is registered and executing, then try to remap.
	time.Sleep(10 * time.Millisecond)
	if err := work.MapNodes("node0"); err == nil {
		t.Fatal("MapNodes during execution succeeded; want rejection")
	} else if !strings.Contains(err.Error(), "Remap") {
		t.Fatalf("rejection should point at Remap, got: %v", err)
	}
	if err := work.Map("node0"); err == nil {
		t.Fatal("Map during execution succeeded; want rejection")
	}
	close(release)
	if res := <-ch; res.Err != nil {
		t.Fatalf("call failed: %v", res.Err)
	}
	// Idle again: replacing the mapping is allowed.
	if err := work.MapNodes("node0"); err != nil {
		t.Fatalf("MapNodes while idle: %v", err)
	}
}

type hiddenState struct {
	Public int
	secret int //nolint:unused // exercises the unexported-field rejection
}

func TestRemapRejectsUnmigratableState(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")

	hidden := core.MustCollection[hiddenState](app, "unmig-hidden")
	if err := hidden.Map("node0"); err != nil {
		t.Fatal(err)
	}
	err := hidden.Remap(context.Background(), "node1")
	if err == nil || !strings.Contains(err.Error(), "unexported") {
		t.Fatalf("want unexported-field rejection, got: %v", err)
	}

	type unregisteredState struct{ X int }
	unreg := core.MustCollection[unregisteredState](app, "unmig-unreg")
	if err := unreg.Map("node0"); err != nil {
		t.Fatal(err)
	}
	err = unreg.Remap(context.Background(), "node1")
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("want unregistered-type rejection, got: %v", err)
	}

	// The failed validations must not have flipped anything.
	if got, _ := hidden.NodeOf(0); got != "node0" {
		t.Fatalf("placement changed on failed remap: %q", got)
	}
}

func TestRemapQuiesceTimeout(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1", "node2")
	main := core.MustCollection[struct{}](app, "qt-main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	work := core.MustCollection[struct{}](app, "qt-work")
	if err := work.Map("node1"); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := core.Leaf[*MigOrder, *MigDone]("qt-slow",
		func(c *core.Ctx, in *MigOrder) *MigDone {
			started <- struct{}{}
			<-release
			return &MigDone{N: in.N}
		})
	g, err := app.NewFlowgraph("qt", core.Path(
		core.NewNode(core.Leaf[*MigOrder, *MigOrder]("qt-in",
			func(c *core.Ctx, in *MigOrder) *MigOrder { return in }), main, core.MainRoute()),
		core.NewNode(slow, work, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := g.CallAsync(context.Background(), &MigOrder{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rerr := work.Remap(ctx, "node2")
	if rerr == nil {
		t.Fatal("Remap of a busy thread with a short deadline succeeded; want timeout")
	}
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got: %v", rerr)
	}
	if got, _ := work.NodeOf(0); got != "node1" {
		t.Fatalf("placement changed on aborted remap: %q", got)
	}

	close(release)
	if res := <-ch; res.Err != nil {
		t.Fatalf("call failed after aborted remap: %v", res.Err)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("app failed: %v", err)
	}

	// The rollback must leave the thread fully operational, including a
	// subsequent successful migration.
	if err := work.Remap(context.Background(), "node2"); err != nil {
		t.Fatalf("remap after rollback: %v", err)
	}
	out, err := g.Call(context.Background(), &MigOrder{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.(*MigDone).N != 2 {
		t.Fatalf("bad result after migration: %+v", out)
	}
}

func TestRemapRejectsNonStructState(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	ints := core.MustCollection[int](app, "unmig-int")
	if err := ints.Map("node0"); err != nil {
		t.Fatal(err)
	}
	err := ints.Remap(context.Background(), "node1")
	if err == nil || !strings.Contains(err.Error(), "not a struct") {
		t.Fatalf("want non-struct rejection, got: %v", err)
	}
	if got, _ := ints.NodeOf(0); got != "node0" {
		t.Fatalf("placement changed on failed remap: %q", got)
	}
}
