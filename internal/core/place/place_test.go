package place

import (
	"reflect"
	"testing"
)

func TestTableEpochs(t *testing.T) {
	var tb Table
	if tb.Epoch() != 0 || tb.Len() != 0 {
		t.Fatal("zero table must be empty at epoch 0")
	}
	if _, ok := tb.NodeOf(0); ok {
		t.Fatal("NodeOf on empty table")
	}
	if e := tb.Set([]string{"a", "a", "b"}); e != 1 {
		t.Fatalf("first Set -> epoch %d", e)
	}
	if n, ok := tb.NodeOf(2); !ok || n != "b" {
		t.Fatalf("NodeOf(2) = %q, %v", n, ok)
	}
	if _, ok := tb.NodeOf(3); ok {
		t.Fatal("NodeOf out of range succeeded")
	}
	e, err := tb.SetThread(1, "c")
	if err != nil || e != 2 {
		t.Fatalf("SetThread -> %d, %v", e, err)
	}
	if _, err := tb.SetThread(9, "c"); err == nil {
		t.Fatal("SetThread out of range succeeded")
	}
	epoch, nodes := tb.Snapshot()
	if epoch != 2 || !reflect.DeepEqual(nodes, []string{"a", "c", "b"}) {
		t.Fatalf("snapshot = %d %v", epoch, nodes)
	}
	// Snapshot is a copy.
	nodes[0] = "x"
	if n, _ := tb.NodeOf(0); n != "a" {
		t.Fatal("snapshot aliases the table")
	}
}

func TestPlan(t *testing.T) {
	moves, err := Plan([]string{"a", "b", "c"}, []string{"a", "c", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moves, []Move{{Thread: 1, From: "b", To: "c"}}) {
		t.Fatalf("moves = %v", moves)
	}
	if moves, _ := Plan([]string{"a"}, []string{"a"}); moves != nil {
		t.Fatalf("no-op plan returned %v", moves)
	}
	if _, err := Plan([]string{"a"}, []string{"a", "b"}); err == nil {
		t.Fatal("cardinality change accepted")
	}
}

func TestRelayHoldFlushForward(t *testing.T) {
	var r Relay
	if tgt := r.Target(); tgt != "" {
		t.Fatalf("fresh relay forwards to %q", tgt)
	}
	for _, it := range []string{"a", "b"} {
		if tgt, held := r.Offer(it); !held || tgt != "" {
			t.Fatalf("hold Offer -> %q, %v", tgt, held)
		}
	}
	if r.HeldLen() != 2 {
		t.Fatalf("held %d", r.HeldLen())
	}
	var flushed []string
	r.Flush("nodeB", func(item any) { flushed = append(flushed, item.(string)) })
	if !reflect.DeepEqual(flushed, []string{"a", "b"}) {
		t.Fatalf("flushed %v", flushed)
	}
	if tgt, held := r.Offer("c"); held || tgt != "nodeB" {
		t.Fatalf("forward Offer -> %q, %v", tgt, held)
	}
	if r.HeldLen() != 0 {
		t.Fatal("forwarding relay holds items")
	}
}

func TestRelayAbort(t *testing.T) {
	var r Relay
	r.Offer(1)
	r.Offer(2)
	got := r.Abort()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("aborted %v", got)
	}
}

func collect(dst *[]any) func(any) {
	return func(item any) { *dst = append(*dst, item) }
}

func TestGatesOpenThenClose(t *testing.T) {
	var g Gates
	key := Key{Collection: "c", Thread: 0}
	// Opening fence first: direct tokens buffer until the closing fence.
	var rel []any
	if done := g.OnFence(key, "s", 5, FenceOpen, collect(&rel)); done {
		t.Fatal("half a handshake completed")
	}
	if !g.Offer(key, "s", 5, "t1") || !g.Offer(key, "s", 5, "t2") {
		t.Fatal("open gate did not buffer")
	}
	if g.Offer(key, "other", 5, "x") {
		t.Fatal("gate captured another sender")
	}
	if !g.PendingFor(key, 5, collect(&rel)) {
		t.Fatal("open gate not pending")
	}
	if done := g.OnFence(key, "s", 5, FenceClose, collect(&rel)); !done {
		t.Fatal("handshake did not complete")
	}
	if !reflect.DeepEqual(rel, []any{"t1", "t2"}) {
		t.Fatalf("released %v", rel)
	}
	if g.Offer(key, "s", 5, "t3") {
		t.Fatal("completed gate still buffering")
	}
	if g.PendingFor(key, 5, collect(&rel)) {
		t.Fatal("completed gate still pending")
	}
}

func TestGatesCloseBeforeOpen(t *testing.T) {
	var g Gates
	key := Key{Collection: "c", Thread: 1}
	var rel []any
	if done := g.OnFence(key, "s", 3, FenceClose, collect(&rel)); done {
		t.Fatal("close alone completed")
	}
	// A closed-but-not-opened entry must not buffer tokens (the sender's
	// direct stream always begins with the opening fence).
	if g.Offer(key, "s", 3, "t") {
		t.Fatal("closed-only gate buffered")
	}
	if !g.PendingFor(key, 3, collect(&rel)) {
		t.Fatal("half handshake not pending")
	}
	if done := g.OnFence(key, "s", 3, FenceOpen, collect(&rel)); !done {
		t.Fatal("pair did not complete")
	}
	if len(rel) != 0 {
		t.Fatalf("released %v from empty gate", rel)
	}
}

func TestGatesEpochFloorAndStragglers(t *testing.T) {
	var g Gates
	key := Key{Collection: "c", Thread: 2}
	var rel []any
	// An old-epoch straggler opens a gate...
	g.OnFence(key, "s", 2, FenceOpen, collect(&rel))
	// ...but once the owner is at epoch 5 it must not capture traffic...
	if g.Offer(key, "s", 5, "t") {
		t.Fatal("stale gate captured current traffic")
	}
	// ...and quiesce drops it instead of waiting forever.
	if g.PendingFor(key, 5, collect(&rel)) {
		t.Fatal("stale gate blocks quiesce")
	}
	if g.PendingFor(key, 5, collect(&rel)) {
		t.Fatal("stale gate survived the drop")
	}
}

func TestGatesNewerEpochSupersedes(t *testing.T) {
	var g Gates
	key := Key{Collection: "c", Thread: 3}
	var rel []any
	g.OnFence(key, "s", 2, FenceOpen, collect(&rel))
	g.Offer(key, "s", 0, "old")
	// A newer handshake replaces the entry; the old buffered item is dropped
	// with it (its stream was superseded), and a stale closing fence must
	// not complete the new pair.
	g.OnFence(key, "s", 4, FenceOpen, collect(&rel))
	if done := g.OnFence(key, "s", 2, FenceClose, collect(&rel)); done {
		t.Fatal("stale close completed the newer handshake")
	}
	if done := g.OnFence(key, "s", 4, FenceClose, collect(&rel)); !done {
		t.Fatal("matching close did not complete")
	}
}
