// Package place is the placement layer of the DPS engine: it owns the
// epoch-versioned assignment of thread-collection instances to cluster
// nodes (the paper's dynamic mapping facilities) and the bookkeeping of
// the live-remap protocol that moves a thread between nodes while flow
// graphs execute.
//
// The layer is deliberately transport- and token-agnostic: it stores the
// engine's in-flight items as opaque values and only decides *where they
// stand* in the migration protocol. The protocol has three cooperating
// state machines, one per role:
//
//   - Table (every node, shared in-process): the authoritative
//     thread→node assignment of one collection. Every mutation bumps the
//     epoch, so routing decisions and control messages can be ordered.
//
//   - Relay (the old owner): once a migration begins, arrivals for the
//     migrating instance are held (quiesce window), then flushed to the
//     new owner and forwarded from then on. A relay is permanent: tokens
//     routed with a stale table keep reaching the old node long after the
//     move and must keep being re-sent.
//
//   - Gates (the new owner): per-sender fence handshakes that keep
//     per-instance FIFO order across the route change. A sender switching
//     from the old route to the new one emits a closing fence down the old
//     channel (it arrives behind every stale token and is forwarded by the
//     relay) and an opening fence down the new channel (it arrives ahead
//     of every direct token). The new owner buffers a sender's direct
//     tokens between the opening fence and the forwarded closing fence,
//     which is exactly the interval during which stale tokens of that
//     sender may still be in flight via the relay.
//
// Quiesce ordering, state serialization and the actual sends live in the
// runtime (internal/core/migrate.go); this package is pure bookkeeping and
// is unit-testable without an engine.
package place

import (
	"fmt"
	"sync"
)

// Key identifies one thread instance cluster-wide: the collection name and
// the thread index within it.
type Key struct {
	Collection string
	Thread     int
}

func (k Key) String() string { return fmt.Sprintf("%s[%d]", k.Collection, k.Thread) }

// Table is the epoch-versioned placement of one thread collection:
// nodes[i] hosts thread i. The zero Table is empty and usable.
type Table struct {
	mu    sync.RWMutex
	epoch uint64
	nodes []string
}

// Epoch returns the table's current version. Epoch 0 means never mapped.
func (t *Table) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Len returns the number of placed threads.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// NodeOf returns the node hosting thread i.
func (t *Table) NodeOf(i int) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.nodes) {
		return "", false
	}
	return t.nodes[i], true
}

// Snapshot returns the epoch and a copy of the full assignment.
func (t *Table) Snapshot() (uint64, []string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, append([]string(nil), t.nodes...)
}

// Set replaces the whole assignment and bumps the epoch.
func (t *Table) Set(nodes []string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes = append([]string(nil), nodes...)
	t.epoch++
	return t.epoch
}

// SetThread reassigns one thread and bumps the epoch.
func (t *Table) SetThread(i int, node string) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.nodes) {
		return 0, fmt.Errorf("place: thread %d out of range [0,%d)", i, len(t.nodes))
	}
	t.nodes[i] = node
	t.epoch++
	return t.epoch, nil
}

// Move is one step of a remap plan: thread From→To.
type Move struct {
	Thread   int
	From, To string
}

// Plan diffs the current assignment against the wanted one, returning the
// threads that must migrate. The assignments must have equal length (live
// remapping never changes a collection's cardinality — merge routing and
// credit trackers are sized by it).
func Plan(cur, want []string) ([]Move, error) {
	if len(cur) != len(want) {
		return nil, fmt.Errorf("place: remap changes thread count %d -> %d; cardinality is fixed while graphs execute", len(cur), len(want))
	}
	var moves []Move
	for i := range cur {
		if cur[i] != want[i] {
			moves = append(moves, Move{Thread: i, From: cur[i], To: want[i]})
		}
	}
	return moves, nil
}

// Relay is the old owner's forwarder state for one migrated-away instance.
// It starts in the hold state (the quiesce window: arrivals are buffered in
// order) and switches to forwarding once the instance's state has been
// shipped; Flush performs that transition and returns the buffer.
type Relay struct {
	mu     sync.Mutex
	target string // "" while holding
	held   []any
}

// Offer presents one arrival. While holding it is buffered and ok reports
// true; once forwarding, the caller must re-send the item to the returned
// target itself (keeping the send outside the relay lock — per-sender
// arrivals are processed sequentially, so sequential re-sends preserve
// per-sender order).
func (r *Relay) Offer(item any) (target string, held bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.target == "" {
		r.held = append(r.held, item)
		return "", true
	}
	return r.target, false
}

// Flush transitions the relay to forwarding toward target. send is
// invoked for every held item, in arrival order, while the relay lock is
// held — so an arrival racing the flush cannot be re-sent ahead of the
// buffer it logically follows.
func (r *Relay) Flush(target string, send func(item any)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, it := range r.held {
		send(it)
	}
	r.held = nil
	r.target = target
}

// Abort returns the held arrivals for local re-dispatch (the migration was
// abandoned before the table flipped, so this node still owns the
// instance). The caller removes the relay afterwards.
func (r *Relay) Abort() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.held
	r.held = nil
	return held
}

// Target returns the forward destination, or "" while holding.
func (r *Relay) Target() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// Retarget repoints a forwarding relay at a new destination. The failure
// recovery uses it when the node a relay forwards to is declared dead and
// the instance moves on to a survivor; a holding relay is left alone.
func (r *Relay) Retarget(target string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.target != "" {
		r.target = target
	}
}

// HeldLen reports the current hold-buffer depth (tests and stats).
func (r *Relay) HeldLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.held)
}

// FencePhase distinguishes the two halves of a sender's route-change
// handshake.
type FencePhase byte

const (
	// FenceClose travels the sender's old channel: it arrives at the old
	// owner behind every stale token the sender posted there and is
	// forwarded to the new owner by the relay.
	FenceClose FencePhase = 1
	// FenceOpen travels the sender's new channel: it arrives at the new
	// owner ahead of every direct token the sender posts there.
	FenceOpen FencePhase = 2
)

// Gates is the new owner's per-sender fence bookkeeping for instances it
// recently received. A gate exists for sender src while the owner has seen
// the opening fence but not yet the forwarded closing fence; direct tokens
// from src are buffered in between.
type Gates struct {
	mu sync.Mutex
	m  map[gateKey]*gate
}

type gateKey struct {
	key Key
	src string
}

type gate struct {
	epoch  uint64
	closed bool // FenceClose observed (via the relay)
	opened bool // FenceOpen observed (directly from the sender)
	buf    []any
}

// Offer presents a direct arrival from src. It reports whether the item
// was buffered behind an open gate; otherwise the caller delivers it
// normally. minEpoch is the epoch at which the caller became the instance's
// owner: a leftover gate of an older migration (a fence half that arrived
// long after its handshake stopped mattering) must not capture current
// traffic.
func (g *Gates) Offer(key Key, src string, minEpoch uint64, item any) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	gt, ok := g.m[gateKey{key: key, src: src}]
	if !ok || !gt.opened || gt.closed || gt.epoch < minEpoch {
		return false
	}
	gt.buf = append(gt.buf, item)
	return true
}

// OnFence applies one fence, reporting whether it completed the sender's
// handshake (both halves now seen). deliver is invoked, under the gates
// lock, for every buffered item released by a completed handshake, in
// arrival order; holding the lock guarantees a concurrently arriving direct
// token cannot overtake the released buffer.
func (g *Gates) OnFence(key Key, src string, epoch uint64, phase FencePhase, deliver func(item any)) (completed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[gateKey]*gate)
	}
	gk := gateKey{key: key, src: src}
	gt, ok := g.m[gk]
	if !ok {
		gt = &gate{epoch: epoch}
		g.m[gk] = gt
	} else if gt.epoch != epoch {
		// A fence of a different epoch (an old handshake completing after a
		// newer one started, or vice versa) must not release the newer
		// gate's buffer. Track the newest epoch only; a stale fence is a
		// no-op, a newer one supersedes the entry.
		if epoch < gt.epoch {
			return false
		}
		gt = &gate{epoch: epoch}
		g.m[gk] = gt
	}
	switch phase {
	case FenceClose:
		gt.closed = true
	case FenceOpen:
		gt.opened = true
	}
	if gt.closed && gt.opened {
		for _, it := range gt.buf {
			deliver(it)
		}
		delete(g.m, gk)
		return true
	}
	return false
}

// PendingFor reports whether any gate for key at or above minEpoch is
// still awaiting its other fence half (the quiesce check of a follow-up
// migration must wait for outstanding handshakes to settle). Entries below
// minEpoch are stragglers of migrations that stopped mattering when the
// caller (re)gained ownership; they are dropped, with any buffered items
// handed to deliver.
func (g *Gates) PendingFor(key Key, minEpoch uint64, deliver func(item any)) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	pending := false
	for gk, gt := range g.m {
		if gk.key != key {
			continue
		}
		if gt.epoch < minEpoch {
			for _, it := range gt.buf {
				deliver(it)
			}
			delete(g.m, gk)
			continue
		}
		pending = true
	}
	return pending
}
