package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
)

// Token types of the paper's tutorial application (§3): a string is split
// into characters, uppercased in parallel, and merged back.
type StringToken struct {
	Str string
}

type CharToken struct {
	Chr byte
	Pos int
}

var (
	_ = serial.MustRegister[StringToken]()
	_ = serial.MustRegister[CharToken]()
)

// buildUppercase constructs the tutorial graph on the given app:
// SplitString -> ToUpperCase -> MergeString.
func buildUppercase(t testing.TB, app *core.App, graphName string, computeMapping string) *core.Flowgraph {
	t.Helper()
	main := core.MustCollection[struct{}](app, graphName+"-main")
	compute := core.MustCollection[struct{}](app, graphName+"-compute")
	if err := main.Map(app.MasterNode()); err != nil {
		t.Fatal(err)
	}
	if err := compute.Map(computeMapping); err != nil {
		t.Fatal(err)
	}

	split := core.Split[*StringToken, *CharToken]("SplitString",
		func(c *core.Ctx, in *StringToken, post func(*CharToken)) {
			for i := 0; i < len(in.Str); i++ {
				post(&CharToken{Chr: in.Str[i], Pos: i})
			}
		})
	upper := core.Leaf[*CharToken, *CharToken]("ToUpperCase",
		func(c *core.Ctx, in *CharToken) *CharToken {
			ch := in.Chr
			if ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			return &CharToken{Chr: ch, Pos: in.Pos}
		})
	merge := core.Merge[*CharToken, *StringToken]("MergeString",
		func(c *core.Ctx, first *CharToken, next func() (*CharToken, bool)) *StringToken {
			buf := make(map[int]byte)
			max := -1
			for in, ok := first, true; ok; in, ok = next() {
				buf[in.Pos] = in.Chr
				if in.Pos > max {
					max = in.Pos
				}
			}
			out := make([]byte, max+1)
			for p, ch := range buf {
				out[p] = ch
			}
			return &StringToken{Str: string(out)}
		})

	route := core.ByKey[*CharToken]("RoundRobinRoute", func(in *CharToken) int { return in.Pos })
	b := core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(upper, compute, route),
		core.NewNode(merge, main, core.MainRoute()),
	)
	g, err := app.NewFlowgraph(graphName, b)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newLocalApp(t testing.TB, cfg core.Config, nodes ...string) *core.App {
	t.Helper()
	app, err := core.NewLocalApp(cfg, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func TestUppercaseSingleNode(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	g := buildUppercase(t, app, "upper", "node0")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "hello, world"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "HELLO, WORLD" {
		t.Fatalf("got %q", got)
	}
}

func TestUppercaseMultiNode(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1", "node2")
	g := buildUppercase(t, app, "upper", "node1*2 node2")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "dynamic parallel schedules"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "DYNAMIC PARALLEL SCHEDULES" {
		t.Fatalf("got %q", got)
	}
}

func TestUppercaseForceSerialize(t *testing.T) {
	// The paper's several-kernels-per-host debug mode: serialization even
	// for local transfers.
	app := newLocalApp(t, core.Config{ForceSerialize: true}, "node0")
	g := buildUppercase(t, app, "upper", "node0")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "force"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "FORCE" {
		t.Fatalf("got %q", got)
	}
}

func TestUppercaseOverSimnet(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 100e6, Latency: 20 * time.Microsecond, TimeScale: 1})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{}, net, "n0", "n1", "n2", "n3")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	g := buildUppercase(t, app, "upper", "n1 n2 n3")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "simnet"}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "SIMNET" {
		t.Fatalf("got %q", got)
	}
}

func TestPipelinedConcurrentCalls(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	g := buildUppercase(t, app, "upper", "node0 node1")
	const calls = 50
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fmt.Sprintf("call number %d", i)
			out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: in}, 20*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if got := out.(*StringToken).Str; got != strings.ToUpper(in) {
				errs <- fmt.Errorf("call %d: got %q", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- Thread state ------------------------------------------------------

type CountToken struct {
	N int
}

type SumToken struct {
	Sum   int
	Calls int
}

type counterState struct {
	mine int
}

var (
	_ = serial.MustRegister[CountToken]()
	_ = serial.MustRegister[SumToken]()
)

func TestThreadStatePersistsAcrossTokens(t *testing.T) {
	// Thread members build distributed data structures: each worker thread
	// accumulates into its private state; a second graph reads it back.
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	main := core.MustCollection[struct{}](app, "main")
	workers := core.MustCollection[counterState](app, "workers")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	if err := workers.Map("node0 node1"); err != nil {
		t.Fatal(err)
	}

	split := core.Split[*CountToken, *CountToken]("fan",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	add := core.Leaf[*CountToken, *CountToken]("add",
		func(c *core.Ctx, in *CountToken) *CountToken {
			st := core.StateOf[counterState](c)
			st.mine += in.N
			return in
		})
	collect := core.Merge[*CountToken, *SumToken]("collect",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Calls: n}
		})

	g, err := app.NewFlowgraph("accumulate", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(add, workers, core.ByKey[*CountToken]("bykey", func(in *CountToken) int { return in.N })),
		core.NewNode(collect, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 10}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*SumToken).Calls; got != 10 {
		t.Fatalf("merge saw %d tokens, want 10", got)
	}

	// Read the worker state back through a second graph over the same
	// collection: thread i must hold sum of matching keys.
	readState := core.Split[*CountToken, *CountToken]("readsplit",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < 2; i++ {
				post(&CountToken{N: i})
			}
		})
	report := core.Leaf[*CountToken, *SumToken]("report",
		func(c *core.Ctx, in *CountToken) *SumToken {
			st := core.StateOf[counterState](c)
			return &SumToken{Sum: st.mine}
		})
	total := core.Merge[*SumToken, *SumToken]("total",
		func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &SumToken{Sum: sum}
		})
	g2, err := app.NewFlowgraph("readback", core.Path(
		core.NewNode(readState, main, core.MainRoute()),
		core.NewNode(report, workers, core.ByKey[*CountToken]("direct", func(in *CountToken) int { return in.N })),
		core.NewNode(total, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := g2.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// sum over workers of (sum of i routed to them) = 0+1+...+9 = 45.
	if got := out2.(*SumToken).Sum; got != 45 {
		t.Fatalf("distributed state sums to %d, want 45", got)
	}
}
