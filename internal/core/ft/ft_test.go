package ft

import (
	"reflect"
	"testing"

	"repro/internal/core/place"
)

func key(c string, t int) place.Key { return place.Key{Collection: c, Thread: t} }

func TestSeqAssignmentAndPrefixFilter(t *testing.T) {
	s := NewState(StreamOf("workers", 3))
	a, b := key("workers", 0), key("workers", 1)
	st := DerivedStream(s.Stream(), "n/m")
	if got := s.NextOut(st, a); got != 1 {
		t.Fatalf("first seq = %d", got)
	}
	if got := s.NextOut(st, a); got != 2 {
		t.Fatalf("second seq = %d", got)
	}
	if got := s.NextOut(st, b); got != 1 {
		t.Fatalf("per-destination counters must be independent, got %d", got)
	}

	r := NewState(StreamOf("main", 0))
	for _, seq := range []uint64{1, 2, 3} {
		if !r.CheckIn(st, seq) {
			t.Fatalf("fresh seq %d filtered", seq)
		}
	}
	for _, seq := range []uint64{3, 2, 1} {
		if r.CheckIn(st, seq) {
			t.Fatalf("duplicate seq %d accepted", seq)
		}
	}
	if !r.CheckIn(st, 4) {
		t.Fatal("next fresh seq filtered")
	}
	if !r.CheckIn("other-stream", 1) {
		t.Fatal("streams must be independent")
	}
}

func TestLogRetentionCutAndReplayOrder(t *testing.T) {
	s := NewState(StreamOf("w", 0))
	a := key("c", 1)
	s1 := DerivedStream(s.Stream(), "in1")
	s2 := DerivedStream(s.Stream(), "in2")
	// Interleave two derived streams toward one destination.
	s.Append(Entry{Stream: s1, Dst: a, Seq: 1, Kind: EntryToken})
	s.Append(Entry{Stream: s2, Dst: a, Seq: 1, Kind: EntryToken})
	s.Append(Entry{Stream: s1, Dst: a, Seq: 2, Kind: EntryToken})
	s.Append(Entry{Stream: s2, Dst: a, Seq: 2, Kind: EntryGroupEnd})
	s.Append(Entry{Stream: s1, Dst: a, Seq: 3, Kind: EntryToken})
	if s.LogLen() != 5 {
		t.Fatalf("log length %d", s.LogLen())
	}

	// Cut is per (stream, dst): s1 <= 2 falls, s2 untouched.
	if n := s.Cut(s1, a, 2); n != 2 {
		t.Fatalf("cut dropped %d entries, want 2", n)
	}
	got := s.EntriesTo(a)
	want := []struct {
		stream string
		seq    uint64
	}{{s2, 1}, {s2, 2}, {s1, 3}}
	if len(got) != len(want) {
		t.Fatalf("entries after cut: %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Stream != w.stream || got[i].Seq != w.seq {
			t.Fatalf("entry %d = (%q, %d), want (%q, %d) — replay must keep send order",
				i, got[i].Stream, got[i].Seq, w.stream, w.seq)
		}
	}
	// A cut for another destination drops nothing.
	if n := s.Cut(s2, key("c", 9), 99); n != 0 {
		t.Fatalf("foreign cut dropped %d entries", n)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewState(StreamOf("w", 2))
	a := key("c", 0)
	st := DerivedStream(s.Stream(), "n/m")
	s.NextOut(st, a)
	s.NextOut(st, a)
	s.CheckIn("up", 7)
	s.Append(Entry{Stream: st, Dst: a, Seq: 1, CallID: 42, Kind: EntryToken, Bytes: []byte{1, 2, 3}})

	rec := s.Snapshot()
	rec.Key = key("w", 2)
	rec.Seq = 9
	rec.State = []byte("state")

	// Wire round trip.
	dec, err := DecodeRecord(rec.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, dec) {
		t.Fatalf("record round trip:\n got %+v\nwant %+v", dec, rec)
	}

	// Restore regenerates the original sequencing.
	r2 := NewState(StreamOf("w", 2))
	r2.Restore(dec)
	if got := r2.NextOut(st, a); got != 3 {
		t.Fatalf("restored counter continues at %d, want 3", got)
	}
	if r2.CheckIn("up", 7) {
		t.Fatal("restored filter forgot a processed seq")
	}
	if got := r2.EntriesTo(a); len(got) != 1 || got[0].CallID != 42 || string(got[0].Bytes) != "\x01\x02\x03" {
		t.Fatalf("restored log: %+v", got)
	}
}

func TestDecodeRecordHostile(t *testing.T) {
	rec := &Record{Key: key("c", 1), Seq: 3, In: map[string]uint64{"s": 1}}
	full := rec.Encode(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeRecord(full[:cut]); err == nil && cut < len(full)-1 {
			// Some prefixes can decode if the cut lands between optional
			// trailing sections; a crash is the only unacceptable outcome.
			continue
		}
	}
	// A hostile length claim must not allocate unboundedly.
	hostile := append([]byte(nil), full...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodeRecord(hostile); err == nil {
		t.Log("trailing garbage accepted (tolerated: decoder stops at the log)")
	}
}

func TestStoreCommitOrdering(t *testing.T) {
	st := &Store{}
	k := key("w", 0)
	if !st.Commit(&Record{Key: k, Seq: 2}) {
		t.Fatal("first commit rejected")
	}
	if st.Commit(&Record{Key: k, Seq: 1}) {
		t.Fatal("stale commit accepted")
	}
	if st.Commit(&Record{Key: k, Seq: 2}) {
		t.Fatal("same-seq commit accepted")
	}
	if !st.Commit(&Record{Key: k, Seq: 5}) {
		t.Fatal("newer commit rejected")
	}
	if got := st.Latest(k); got == nil || got.Seq != 5 {
		t.Fatalf("latest = %+v", got)
	}
	if st.Latest(key("w", 1)) != nil {
		t.Fatal("phantom record")
	}
	if st.Len() != 1 {
		t.Fatalf("store len %d", st.Len())
	}
}

func TestDetectorFoldsReports(t *testing.T) {
	d := &Detector{}
	if d.IsDead("a") {
		t.Fatal("fresh detector knows a death")
	}
	if !d.MarkDead("a") {
		t.Fatal("first report must win")
	}
	if d.MarkDead("a") {
		t.Fatal("second report must fold")
	}
	if !d.IsDead("a") || d.IsDead("b") {
		t.Fatal("membership wrong")
	}
	d.MarkDead("b")
	if got := d.Dead(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("dead list %v", got)
	}
}

func TestDerivedStreamProperties(t *testing.T) {
	base := StreamOf("workers", 1)
	d1 := DerivedStream(base, "i/main/0")
	d2 := DerivedStream(base, "i/main/1")
	if d1 == d2 {
		t.Fatal("distinct inputs must derive distinct streams")
	}
	if d1 != DerivedStream(base, "i/main/0") {
		t.Fatal("derivation must be deterministic")
	}
	if BaseStream(d1) != base || BaseStream(base) != base {
		t.Fatalf("base recovery failed: %q", BaseStream(d1))
	}
	if DerivedStream(base, "") != base {
		t.Fatal("empty input stream must keep the base identity")
	}
	// Nested derivation stays bounded: deriving from a derived stream
	// appends one suffix to the base each hop but hashes the whole input.
	d3 := DerivedStream(StreamOf("next", 0), d1)
	if BaseStream(d3) != StreamOf("next", 0) {
		t.Fatalf("nested base recovery failed: %q", d3)
	}
}
