package ft

import (
	"reflect"
	"testing"
)

func TestSnapshotRegenHappyPath(t *testing.T) {
	s := NewState(StreamOf("w", 0))
	a := key("c", 0)
	st := DerivedStream(s.Stream(), "up")
	for in := uint64(1); in <= 3; in++ {
		s.CheckIn("up", in)
		seq := s.NextOut(st, a)
		s.Append(Entry{Stream: st, Dst: a, Seq: seq, InStream: "up", InSeq: in, Kind: EntryToken, Bytes: []byte("payload")})
	}

	rec, ok := s.SnapshotRegen()
	if !ok {
		t.Fatal("regenerative snapshot refused on a clean pipeline")
	}
	if len(rec.Log) != 0 {
		t.Fatalf("regenerative record carries %d log entries", len(rec.Log))
	}
	// Every retained output's input must be replayed: cursor rewound below
	// the earliest live entry's input.
	if got := rec.In["up"]; got != 0 {
		t.Fatalf("rewound cursor = %d, want 0", got)
	}
	// Out restored to the cut watermark so regenerated outputs collide with
	// the originals in the receivers' duplicate filters.
	if got := rec.Out[OutKey{Stream: st, Dst: a}]; got != 0 {
		t.Fatalf("restored out counter = %d, want 0", got)
	}

	// Restoring the record and re-processing inputs 1..3 must reassign the
	// exact original sequence numbers.
	r2 := NewState(StreamOf("w", 0))
	r2.Restore(rec)
	for want := uint64(1); want <= 3; want++ {
		if got := r2.NextOut(st, a); got != want {
			t.Fatalf("regenerated seq = %d, want %d", got, want)
		}
	}
}

func TestSnapshotRegenAfterCut(t *testing.T) {
	s := NewState(StreamOf("w", 0))
	a := key("c", 0)
	st := DerivedStream(s.Stream(), "up")
	for in := uint64(1); in <= 4; in++ {
		s.CheckIn("up", in)
		seq := s.NextOut(st, a)
		s.Append(Entry{Stream: st, Dst: a, Seq: seq, InStream: "up", InSeq: in, Kind: EntryToken})
	}
	// Receiver checkpointed through output 2: outputs of inputs 1..2 cut.
	if n := s.Cut(st, a, 2); n != 2 {
		t.Fatalf("cut dropped %d", n)
	}

	rec, ok := s.SnapshotRegen()
	if !ok {
		t.Fatal("regenerative snapshot refused after a clean cut")
	}
	if got := rec.In["up"]; got != 2 {
		t.Fatalf("rewound cursor = %d, want 2 (inputs 3..4 re-executed)", got)
	}
	if got := rec.Out[OutKey{Stream: st, Dst: a}]; got != 2 {
		t.Fatalf("restored out counter = %d, want the cut watermark 2", got)
	}

	// The regenerated outputs must reuse sequences 3 and 4.
	r2 := NewState(StreamOf("w", 0))
	r2.Restore(rec)
	if got := r2.NextOut(st, a); got != 3 {
		t.Fatalf("first regenerated seq = %d, want 3", got)
	}
}

func TestSnapshotRegenVetoes(t *testing.T) {
	a := key("c", 0)

	t.Run("unattributed entry", func(t *testing.T) {
		s := NewState(StreamOf("w", 0))
		st := DerivedStream(s.Stream(), "up")
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), Kind: EntryToken}) // InSeq zero
		if _, ok := s.SnapshotRegen(); ok {
			t.Fatal("rewound past an output with no input attribution")
		}
	})

	t.Run("poisoned channel", func(t *testing.T) {
		s := NewState(StreamOf("w", 0))
		st := DerivedStream(s.Stream(), "up")
		// Two different input streams feed one channel: per-channel input
		// attribution is ambiguous, regeneration must refuse.
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "up", InSeq: 1, Kind: EntryToken})
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "other", InSeq: 1, Kind: EntryToken})
		if _, ok := s.SnapshotRegen(); ok {
			t.Fatal("rewound a channel fed by two input streams")
		}
	})

	t.Run("cut above the rewind point", func(t *testing.T) {
		s := NewState(StreamOf("w", 0))
		st := DerivedStream(s.Stream(), "up")
		// Input 5's output (seq 1) was cut; input 3's output (seq 2) is still
		// live, forcing a rewind to 2 — but re-executing input 5 would then
		// assign its output a FRESH sequence the receivers never saw cut.
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "up", InSeq: 5, Kind: EntryToken})
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "up", InSeq: 3, Kind: EntryToken})
		s.CheckIn("up", 5)
		if n := s.Cut(st, a, 1); n != 1 {
			t.Fatalf("cut dropped %d", n)
		}
		if _, ok := s.SnapshotRegen(); ok {
			t.Fatal("rewound below a cut input: the regenerated copy would be a duplicate delivery")
		}
	})

	t.Run("below the shipped floor", func(t *testing.T) {
		s := NewState(StreamOf("w", 0))
		st := DerivedStream(s.Stream(), "up")
		// A full snapshot shipped with in["up"]=2: upstream may truncate its
		// log to that point, so inputs 1..2 can never be replayed again.
		s.CheckIn("up", 1)
		s.CheckIn("up", 2)
		_ = s.Snapshot()
		// A still-live output of input 2 would force a rewind to 1 < floor 2.
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "up", InSeq: 2, Kind: EntryToken})
		if _, ok := s.SnapshotRegen(); ok {
			t.Fatal("rewound below the shipped floor")
		}
	})
}

func TestRegenRecordRoundTrip(t *testing.T) {
	s := NewState(StreamOf("w", 1))
	a := key("c", 2)
	st := DerivedStream(s.Stream(), "up")
	for in := uint64(1); in <= 2; in++ {
		s.CheckIn("up", in)
		s.Append(Entry{Stream: st, Dst: a, Seq: s.NextOut(st, a), InStream: "up", InSeq: in, Kind: EntryToken})
	}
	s.Cut(st, a, 2)
	rec, ok := s.SnapshotRegen()
	if !ok {
		t.Fatal("regen refused")
	}
	rec.Key = key("w", 1)
	rec.Seq = 4
	dec, err := DecodeRecord(rec.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Normalize nil-vs-empty (a log-free record decodes to empty slices).
	if len(dec.Log) == 0 && len(rec.Log) == 0 {
		dec.Log, rec.Log = nil, nil
	}
	if len(dec.State) == 0 && len(rec.State) == 0 {
		dec.State, rec.State = nil, nil
	}
	if !reflect.DeepEqual(rec, dec) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", dec, rec)
	}
	if dec.Chans[OutKey{Stream: st, Dst: a}].CutOut != 2 {
		t.Fatalf("channel marks lost: %+v", dec.Chans)
	}
}

// TestEntryAttributionRoundTrip pins that InStream/InSeq survive the full
// record encoding (they ride in the log section).
func TestEntryAttributionRoundTrip(t *testing.T) {
	s := NewState(StreamOf("w", 0))
	a := key("c", 0)
	st := DerivedStream(s.Stream(), "up")
	s.Append(Entry{Stream: st, Dst: a, Seq: 1, CallID: 7, InStream: "up", InSeq: 9, Kind: EntryToken, Bytes: []byte("b")})
	rec := s.Snapshot()
	dec, err := DecodeRecord(rec.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Log) != 1 || dec.Log[0].InStream != "up" || dec.Log[0].InSeq != 9 {
		t.Fatalf("attribution lost: %+v", dec.Log)
	}
}
