// Package ft is the fault-tolerance layer of the DPS engine: the
// bookkeeping that lets an application survive the death of a cluster node
// while flow graphs execute, following the checkpoint-and-message-logging
// line of work that grew out of the DPS paper (checkpointed thread state,
// replay of in-flight tokens, duplicate suppression).
//
// Like internal/core/place, the package is deliberately transport- and
// token-agnostic: it stores engine-encoded messages as opaque byte slices
// and only answers *bookkeeping* questions. Four cooperating pieces:
//
//   - State (one per sending thread instance, plus one per node for graph
//     calls): assigns per-destination sequence numbers to outbound tokens,
//     retains every sent message in a log until it is known to be
//     durable, and filters inbound duplicates by remembering the highest
//     sequence processed per sender stream. Because transports deliver
//     FIFO per sender, the processed set of a stream is always a prefix,
//     so one counter per stream is an exact duplicate filter.
//
//   - Record: one checkpoint of one thread instance — the serialized user
//     state plus the State snapshot (inbound cursors, outbound counters,
//     retained log). A restored instance re-executes replayed inputs with
//     the same outbound sequence numbers the original execution used,
//     which is what makes duplicate suppression work across re-execution.
//
//   - Store: the committed checkpoints, kept on the master node (the
//     stand-in for replicated stable storage; the master also hosts graph
//     calls and the recovery coordinator, so its death ends the
//     application either way). Commits are ordered by checkpoint sequence
//     so a delayed older checkpoint cannot overwrite a newer one.
//
//   - Detector: the once-only dead-node marks shared by the failure
//     detection paths (transport send errors, kernel heartbeats, injected
//     crashes), so concurrent reports of one death fold into one recovery.
//
// Log truncation is driven by checkpoint commits: an entry may be dropped
// exactly when a committed checkpoint of its destination covers its
// sequence number (the destination can never need it again — restores use
// the newest checkpoint, and inbound cursors are monotonic). Consumption
// acknowledgements of the flow-control layer provide an earlier hook for
// the common case: a token consumed by a collector on the master node is
// durable immediately (the master never restores), so its ack already
// identifies it as safe to drop. The quiesce, serialization and sends live
// in the runtime (internal/core/ftengine.go); this package is pure
// bookkeeping and is unit-testable without an engine.
package ft

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core/place"
)

// Entry kinds: what the engine-encoded Bytes of a log entry contain.
const (
	// EntryToken is a token envelope (header + serialized payload).
	EntryToken byte = 1
	// EntryGroupEnd is a split's group-end announcement.
	EntryGroupEnd byte = 2
)

// Entry is one logged send: an engine-encoded message retained until a
// checkpoint of its destination covers it, replayable if the destination
// node dies first.
type Entry struct {
	// Stream is the full (derived) sender stream the entry was sent on.
	Stream string
	// Dst is the destination thread instance.
	Dst place.Key
	// Seq is the entry's sequence number on the (Stream, Dst) pair.
	Seq uint64
	// CallID identifies the invocation, so replays skip canceled calls.
	CallID uint64
	// InStream / InSeq attribute the entry to the input whose execution
	// produced it: the sender stream the input arrived on and its sequence
	// number there. They power regenerative checkpoints (SnapshotRegen) —
	// knowing which input each retained output belongs to is what lets a
	// checkpoint rewind its input cursors instead of shipping the log.
	InStream string
	InSeq    uint64
	// Kind says how to decode Bytes (EntryToken / EntryGroupEnd).
	Kind byte
	// Bytes is the engine-encoded message, opaque to this package.
	Bytes []byte
}

// OutKey identifies one outbound cursor: a derived sender stream paired
// with its destination instance.
type OutKey struct {
	Stream string
	Dst    place.Key
}

// ChanMark is the per-output-channel watermark that makes regenerative
// checkpoints sound. Because an instance's output stream is derived from
// the input stream that produced it (DerivedStream), each (stream, dst)
// channel carries the outputs of exactly one input stream, in input order —
// so sequence numbers on a channel are contiguous and cuts always remove a
// prefix. Tracking how far that prefix reaches, in both output and input
// coordinates, tells a checkpoint which inputs it may safely promise to
// re-execute instead of logging their outputs.
type ChanMark struct {
	// InStream is the input stream whose executions feed this channel
	// ("" poisons the channel: conflicting or unattributed entries were
	// appended, and regeneration must not trust it).
	InStream string
	// CutIn is the highest input sequence whose output on this channel has
	// been cut from the log.
	CutIn uint64
	// CutOut is the highest output sequence ever cut (monotone; cuts drop
	// prefixes, so this is also the length of the fully-durable prefix).
	CutOut uint64
}

// State is the fault-tolerance state of one sender: outbound sequencing
// and retention, inbound duplicate filtering. The zero value is not usable;
// create with NewState. All methods are safe for concurrent use.
type State struct {
	stream string

	mu  sync.Mutex
	in  map[string]uint64 // highest inbound seq processed, per sender stream
	out map[OutKey]uint64 // last outbound seq assigned, per (stream, destination)
	log []Entry

	// chans holds the regeneration watermarks, one per output channel ever
	// used; shipped is the highest In value per input stream ever placed in
	// a record that left this state (checkpoint or migration) — a floor no
	// later regenerative rewind may go below, because upstream logs may
	// already be cut to it.
	chans   map[OutKey]ChanMark
	shipped map[string]uint64
}

// NewState creates the fault-tolerance state of a sender identified by
// stream (see StreamOf / NodeStream).
func NewState(stream string) *State {
	return &State{
		stream:  stream,
		in:      make(map[string]uint64),
		out:     make(map[OutKey]uint64),
		chans:   make(map[OutKey]ChanMark),
		shipped: make(map[string]uint64),
	}
}

// Stream returns the sender's base stream identity.
func (s *State) Stream() string { return s.stream }

// NextOut assigns the next outbound sequence number of stream toward dst.
// stream is a derived stream of this sender (see DerivedStream).
func (s *State) NextOut(stream string, dst place.Key) uint64 {
	k := OutKey{Stream: stream, Dst: dst}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out[k]++
	return s.out[k]
}

// CheckIn filters one inbound message: it reports whether (stream, seq) is
// fresh, recording it if so. A false return means the message was already
// processed (directly, or reflected through a restored checkpoint) and
// must be dropped.
func (s *State) CheckIn(stream string, seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.in[stream] {
		return false
	}
	s.in[stream] = seq
	return true
}

// Append retains one sent message for possible replay.
func (s *State) Append(e Entry) {
	s.mu.Lock()
	s.log = append(s.log, e)
	k := OutKey{Stream: e.Stream, Dst: e.Dst}
	cm, ok := s.chans[k]
	if !ok {
		cm.InStream = e.InStream
	} else if cm.InStream != e.InStream {
		cm.InStream = "" // poisoned: regeneration must not trust the channel
	}
	s.chans[k] = cm
	s.mu.Unlock()
}

// Cut drops retained entries of one (stream, dst) pair with sequence
// numbers <= seq (they are covered by a committed checkpoint of dst, or
// were consumed on a node that never restores). It returns the number of
// entries dropped.
func (s *State) Cut(stream string, dst place.Key, seq uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := OutKey{Stream: stream, Dst: dst}
	cm := s.chans[k]
	kept := s.log[:0]
	dropped := 0
	for _, e := range s.log {
		if e.Stream == stream && e.Dst == dst && e.Seq <= seq {
			dropped++
			if e.InSeq > cm.CutIn {
				cm.CutIn = e.InSeq
			}
			if e.Seq > cm.CutOut {
				cm.CutOut = e.Seq
			}
			continue
		}
		kept = append(kept, e)
	}
	if dropped > 0 {
		s.chans[k] = cm
	}
	// Zero the tail so dropped entries' byte slices are collectable.
	for i := len(kept); i < len(s.log); i++ {
		s.log[i] = Entry{}
	}
	s.log = kept
	return dropped
}

// EntriesTo returns the retained entries destined for dst, in send order —
// which is per-stream sequence order, the replay-order correctness
// condition (seqs of distinct derived streams interleave and must not be
// re-sorted against each other).
func (s *State) EntriesTo(dst place.Key) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for _, e := range s.log {
		if e.Dst == dst {
			out = append(out, e)
		}
	}
	return out
}

// LogLen reports the number of retained entries (tests and stats).
func (s *State) LogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// Snapshot copies the state into a Record shell: inbound cursors, outbound
// counters and the retained log. The caller fills Key, Seq and State. The
// record is assumed to leave this state (checkpoint ship or migration), so
// the shipped floors rise to its In cursors — a later regenerative rewind
// must never promise inputs an earlier record may have truncated upstream.
func (s *State) Snapshot() *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Record{
		In:  make(map[string]uint64, len(s.in)),
		Out: make(map[OutKey]uint64, len(s.out)),
		Log: make([]Entry, len(s.log)),
	}
	for k, v := range s.in {
		r.In[k] = v
		if v > s.shipped[k] {
			s.shipped[k] = v
		}
	}
	for k, v := range s.out {
		r.Out[k] = v
	}
	copy(r.Log, s.log)
	s.fillMarks(r)
	return r
}

// fillMarks copies the regeneration watermarks into r (mu held).
func (s *State) fillMarks(r *Record) {
	r.Chans = make(map[OutKey]ChanMark, len(s.chans))
	for k, v := range s.chans {
		r.Chans[k] = v
	}
	r.Shipped = make(map[string]uint64, len(s.shipped))
	for k, v := range s.shipped {
		r.Shipped[k] = v
	}
}

// SnapshotRegen attempts a regenerative (log-free) checkpoint: instead of
// shipping the retained log — the bulk payload bytes that make checkpoint
// egress scale with traffic — it rewinds the inbound cursors to a point
// from which deterministic re-execution regenerates every retained output
// with its original sequence number. The record then carries only cursors
// and counters. ok=false means no sound rewind exists right now (the
// caller falls back to Snapshot); the caller must ensure the instance is
// stateless and never ran a collector — re-execution from rewound cursors
// replays state mutations and merge consumption the record cannot capture.
//
// Soundness: for input stream st the rewound cursor is
//
//	S(st) = min(in[st], min over channels fed by st of (minLiveInSeq − 1))
//
// so on every channel the live entries are exactly the outputs of inputs
// above S — which re-execution regenerates in order, with Out restored to
// CutOut so the regenerated sequence numbers collide with the originals in
// every receiver's duplicate filter. Two conditions can break that and
// veto the rewind: a channel that cut an output of an input above S (the
// regenerated copy would be assigned a FRESH sequence number and slip past
// the filters as a duplicate delivery), and a rewind below a shipped floor
// (upstream logs may already be truncated to an earlier record's In, so
// inputs below it can never be replayed to us).
func (s *State) SnapshotRegen() (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rewound := make(map[string]uint64, len(s.in))
	for st, v := range s.in {
		rewound[st] = v
	}
	for _, e := range s.log {
		cm, ok := s.chans[OutKey{Stream: e.Stream, Dst: e.Dst}]
		if !ok || cm.InStream == "" || e.InSeq == 0 {
			return nil, false // unattributed output: cannot rewind past it
		}
		cur, ok := rewound[cm.InStream]
		if !ok {
			return nil, false
		}
		if e.InSeq-1 < cur {
			rewound[cm.InStream] = e.InSeq - 1
		}
	}
	for k, cm := range s.chans {
		if cm.InStream == "" {
			return nil, false
		}
		S, ok := rewound[cm.InStream]
		if !ok || cm.CutIn > S {
			return nil, false
		}
		if _, ok := s.out[k]; !ok {
			return nil, false
		}
	}
	for st, S := range rewound {
		if S < s.shipped[st] {
			return nil, false
		}
	}
	r := &Record{
		In:  rewound,
		Out: make(map[OutKey]uint64, len(s.chans)),
	}
	for k := range s.out {
		cm, ok := s.chans[k]
		if !ok {
			return nil, false
		}
		r.Out[k] = cm.CutOut
	}
	for st, S := range rewound {
		if S > s.shipped[st] {
			s.shipped[st] = S
		}
	}
	s.fillMarks(r)
	return r, true
}

// Restore overwrites the state from a checkpoint record: the restored
// instance re-executes replayed inputs with exactly the sequencing the
// original execution used past this point.
func (s *State) Restore(r *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in = make(map[string]uint64, len(r.In))
	s.out = make(map[OutKey]uint64, len(r.Out))
	for k, v := range r.In {
		s.in[k] = v
	}
	for k, v := range r.Out {
		s.out[k] = v
	}
	s.log = append([]Entry(nil), r.Log...)
	s.chans = make(map[OutKey]ChanMark, len(r.Chans))
	for k, v := range r.Chans {
		s.chans[k] = v
	}
	s.shipped = make(map[string]uint64, len(r.Shipped))
	for k, v := range r.Shipped {
		s.shipped[k] = v
	}
}

// LastIn returns the inbound cursor of one stream (tests).
func (s *State) LastIn(stream string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in[stream]
}

// StreamOf names the base sender stream of a thread instance. Stream
// identity is logical (collection and thread index), not physical: after a
// failover the re-executed sends of a restored instance must collide with
// the originals in every receiver's duplicate filter, wherever both ran.
func StreamOf(collection string, thread int) string {
	return fmt.Sprintf("i/%s/%d", collection, thread)
}

// NodeStream names the sender stream of a node's graph-call entry posts,
// which originate from no thread instance.
func NodeStream(node string) string { return "n/" + node }

// ParseInstStream splits a (possibly derived) instance stream back into
// its collection and thread index, reporting ok=false for node streams
// and malformed identities. The thread index is the suffix after the last
// '/': collection names come from Go string literals and may themselves
// contain slashes. This is the inverse of StreamOf and lives here so the
// identity format has exactly one owner.
func ParseInstStream(stream string) (coll string, thread int, ok bool) {
	stream = BaseStream(stream)
	if !strings.HasPrefix(stream, "i/") {
		return "", 0, false
	}
	rest := stream[2:]
	i := strings.LastIndexByte(rest, '/')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[i+1:])
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// ParseNodeStream returns the node of a (possibly derived) node stream,
// or ok=false for instance streams. The inverse of NodeStream.
func ParseNodeStream(stream string) (node string, ok bool) {
	stream = BaseStream(stream)
	if !strings.HasPrefix(stream, "n/") {
		return "", false
	}
	return stream[2:], true
}

// streamSep separates a base stream from its derivation suffix. A control
// character cannot appear in collection or node names (Go string literals
// in practice), so the suffix is unambiguous.
const streamSep = "\x1f"

// DerivedStream names the output stream of an instance executing an input
// that arrived on inStream. Deriving the output stream from the input
// stream is the layer's determinant: a restored instance re-executes each
// input stream in sequence order, but the interleaving ACROSS streams is
// not reproducible — per-(input-stream) output cursors make the
// regenerated (sequence → content) binding independent of it. The suffix
// is a hash, so identities stay short through deep pipelines.
func DerivedStream(base, inStream string) string {
	if inStream == "" {
		return base
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(inStream))
	return base + streamSep + strconv.FormatUint(h.Sum64(), 16)
}

// BaseStream strips a stream's derivation suffix, recovering the sending
// instance's identity.
func BaseStream(stream string) string {
	if i := strings.Index(stream, streamSep); i >= 0 {
		return stream[:i]
	}
	return stream
}

// Record is one committed checkpoint of one thread instance.
type Record struct {
	// Key identifies the instance.
	Key place.Key
	// Seq is the application-wide checkpoint sequence number; commits are
	// ordered by it.
	Seq uint64
	// State is the serialized user state (empty for stateless collections
	// and instances that were never touched).
	State []byte
	// In / Out / Log are the State snapshot (see State.Snapshot). A
	// regenerative record (SnapshotRegen) carries rewound In cursors and an
	// empty Log.
	In  map[string]uint64
	Out map[OutKey]uint64
	Log []Entry
	// Chans / Shipped are the regeneration watermarks, restored verbatim so
	// a recovered instance keeps taking regenerative checkpoints.
	Chans   map[OutKey]ChanMark
	Shipped map[string]uint64
}

// Encode appends the record's wire form to b.
func (r *Record) Encode(b []byte) []byte {
	b = appendString(b, r.Key.Collection)
	b = binary.AppendVarint(b, int64(r.Key.Thread))
	b = binary.AppendUvarint(b, r.Seq)
	b = appendBytes(b, r.State)

	b = binary.AppendUvarint(b, uint64(len(r.In)))
	for _, k := range sortedStrings(r.In) {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, r.In[k])
	}
	b = binary.AppendUvarint(b, uint64(len(r.Out)))
	for _, k := range sortedOutKeys(r.Out) {
		b = appendString(b, k.Stream)
		b = appendString(b, k.Dst.Collection)
		b = binary.AppendVarint(b, int64(k.Dst.Thread))
		b = binary.AppendUvarint(b, r.Out[k])
	}
	b = binary.AppendUvarint(b, uint64(len(r.Log)))
	for _, e := range r.Log {
		b = appendString(b, e.Stream)
		b = appendString(b, e.Dst.Collection)
		b = binary.AppendVarint(b, int64(e.Dst.Thread))
		b = binary.AppendUvarint(b, e.Seq)
		b = binary.AppendUvarint(b, e.CallID)
		b = appendString(b, e.InStream)
		b = binary.AppendUvarint(b, e.InSeq)
		b = append(b, e.Kind)
		b = appendBytes(b, e.Bytes)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Chans)))
	for _, k := range sortedChanKeys(r.Chans) {
		cm := r.Chans[k]
		b = appendString(b, k.Stream)
		b = appendString(b, k.Dst.Collection)
		b = binary.AppendVarint(b, int64(k.Dst.Thread))
		b = appendString(b, cm.InStream)
		b = binary.AppendUvarint(b, cm.CutIn)
		b = binary.AppendUvarint(b, cm.CutOut)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Shipped)))
	for _, k := range sortedStrings(r.Shipped) {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, r.Shipped[k])
	}
	return b
}

// maxRecordItems rejects hostile length claims while decoding.
const maxRecordItems = 1 << 24

// DecodeRecord parses a record. Returned byte slices are copies; the
// caller may recycle b.
func DecodeRecord(b []byte) (*Record, error) {
	r := &Record{}
	var err error
	var n int64
	if r.Key.Collection, b, err = readString(b); err != nil {
		return nil, err
	}
	if n, b, err = readVarint(b); err != nil {
		return nil, err
	}
	r.Key.Thread = int(n)
	var u uint64
	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	r.Seq = u
	if r.State, b, err = readBytes(b); err != nil {
		return nil, err
	}

	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if u > maxRecordItems {
		return nil, fmt.Errorf("ft: implausible map size %d", u)
	}
	r.In = make(map[string]uint64, u)
	for i := uint64(0); i < u; i++ {
		var k string
		var v uint64
		if k, b, err = readString(b); err != nil {
			return nil, err
		}
		if v, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		r.In[k] = v
	}
	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if u > maxRecordItems {
		return nil, fmt.Errorf("ft: implausible map size %d", u)
	}
	r.Out = make(map[OutKey]uint64, u)
	for i := uint64(0); i < u; i++ {
		var k OutKey
		var v uint64
		if k.Stream, b, err = readString(b); err != nil {
			return nil, err
		}
		if k.Dst.Collection, b, err = readString(b); err != nil {
			return nil, err
		}
		if n, b, err = readVarint(b); err != nil {
			return nil, err
		}
		k.Dst.Thread = int(n)
		if v, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		r.Out[k] = v
	}
	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if u > maxRecordItems {
		return nil, fmt.Errorf("ft: implausible log size %d", u)
	}
	r.Log = make([]Entry, 0, min(int(u), 4096))
	for i := uint64(0); i < u; i++ {
		var e Entry
		if e.Stream, b, err = readString(b); err != nil {
			return nil, err
		}
		if e.Dst.Collection, b, err = readString(b); err != nil {
			return nil, err
		}
		if n, b, err = readVarint(b); err != nil {
			return nil, err
		}
		e.Dst.Thread = int(n)
		if e.Seq, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if e.CallID, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if e.InStream, b, err = readString(b); err != nil {
			return nil, err
		}
		if e.InSeq, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("ft: truncated entry kind")
		}
		e.Kind, b = b[0], b[1:]
		if e.Bytes, b, err = readBytes(b); err != nil {
			return nil, err
		}
		r.Log = append(r.Log, e)
	}
	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if u > maxRecordItems {
		return nil, fmt.Errorf("ft: implausible map size %d", u)
	}
	r.Chans = make(map[OutKey]ChanMark, u)
	for i := uint64(0); i < u; i++ {
		var k OutKey
		var cm ChanMark
		if k.Stream, b, err = readString(b); err != nil {
			return nil, err
		}
		if k.Dst.Collection, b, err = readString(b); err != nil {
			return nil, err
		}
		if n, b, err = readVarint(b); err != nil {
			return nil, err
		}
		k.Dst.Thread = int(n)
		if cm.InStream, b, err = readString(b); err != nil {
			return nil, err
		}
		if cm.CutIn, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if cm.CutOut, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		r.Chans[k] = cm
	}
	if u, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if u > maxRecordItems {
		return nil, fmt.Errorf("ft: implausible map size %d", u)
	}
	r.Shipped = make(map[string]uint64, u)
	for i := uint64(0); i < u; i++ {
		var k string
		var v uint64
		if k, b, err = readString(b); err != nil {
			return nil, err
		}
		if v, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		r.Shipped[k] = v
	}
	return r, nil
}

// Store holds the committed checkpoints of an application, one latest
// record per instance. It stands in for the replicated stable storage of a
// production deployment and lives on the master node.
type Store struct {
	mu   sync.Mutex
	recs map[place.Key]*Record
}

// Commit installs a checkpoint if it is newer than the stored one,
// reporting whether it was installed (commits may arrive out of order when
// a checkpoint envelope races a failover's traffic).
func (st *Store) Commit(r *Record) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.recs == nil {
		st.recs = make(map[place.Key]*Record)
	}
	if prev, ok := st.recs[r.Key]; ok && prev.Seq >= r.Seq {
		return false
	}
	st.recs[r.Key] = r
	return true
}

// Latest returns the newest committed checkpoint of one instance, or nil.
func (st *Store) Latest(k place.Key) *Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recs[k]
}

// Len reports the number of instances with a committed checkpoint.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.recs)
}

// Detector folds concurrent death reports of one node into a single
// recovery: the first MarkDead per node wins.
type Detector struct {
	mu   sync.Mutex
	dead map[string]bool
}

// MarkDead records a node death, reporting whether this was the first
// report (the caller then owns the recovery).
func (d *Detector) MarkDead(node string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[node] {
		return false
	}
	if d.dead == nil {
		d.dead = make(map[string]bool)
	}
	d.dead[node] = true
	return true
}

// IsDead reports whether a node has been declared dead.
func (d *Detector) IsDead(node string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead[node]
}

// Dead lists the declared-dead nodes.
func (d *Detector) Dead() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.dead))
	for n := range d.dead {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- encoding helpers -----------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("ft: truncated string")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func readBytes(b []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, nil, fmt.Errorf("ft: truncated bytes")
	}
	if l == 0 {
		return nil, b[n:], nil
	}
	out := make([]byte, l)
	copy(out, b[n:n+int(l)])
	return out, b[n+int(l):], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("ft: truncated varint")
	}
	return v, b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("ft: truncated uvarint")
	}
	return v, b[n:], nil
}

func sortedStrings(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedOutKeys(m map[OutKey]uint64) []OutKey {
	out := make([]OutKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortOutKeys(out)
	return out
}

func sortedChanKeys(m map[OutKey]ChanMark) []OutKey {
	out := make([]OutKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortOutKeys(out)
	return out
}

func sortOutKeys(out []OutKey) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		if out[i].Dst.Collection != out[j].Dst.Collection {
			return out[i].Dst.Collection < out[j].Dst.Collection
		}
		return out[i].Dst.Thread < out[j].Dst.Thread
	})
}
