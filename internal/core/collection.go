package core

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
)

// ThreadCollection is a named group of DPS threads. Each thread carries a
// private instance of the collection's state type S (the paper's thread
// class members, used to build distributed data structures) and is placed
// on a cluster node by Map.
//
// Threads are instantiated lazily on their node the first time a token is
// routed to them, mirroring the paper's on-demand application deployment.
type ThreadCollection struct {
	app       *App
	name      string
	stateType reflect.Type // nil for stateless collections
	newState  func() any

	mu         sync.RWMutex
	placements []string // placements[i] = node name of thread i
}

// NewCollection creates a thread collection whose threads each own a
// zero-initialized *S. Use struct{} for stateless collections.
func NewCollection[S any](app *App, name string) (*ThreadCollection, error) {
	st := reflect.TypeOf((*S)(nil)).Elem()
	tc := &ThreadCollection{
		app:       app,
		name:      name,
		stateType: st,
		newState:  func() any { return new(S) },
	}
	if err := app.addCollection(tc); err != nil {
		return nil, err
	}
	return tc, nil
}

// MustCollection is NewCollection panicking on error, for example setup code.
func MustCollection[S any](app *App, name string) *ThreadCollection {
	tc, err := NewCollection[S](app, name)
	if err != nil {
		panic(err)
	}
	return tc
}

// Name returns the collection's name.
func (tc *ThreadCollection) Name() string { return tc.name }

// Map places the collection's threads on cluster nodes using the paper's
// mapping-string syntax: node names separated by spaces with an optional
// multiplier, e.g. "nodeA*2 nodeB" creates threads 0 and 1 on nodeA and
// thread 2 on nodeB. Map replaces any previous mapping; it must not be
// called while a graph using the collection is executing.
func (tc *ThreadCollection) Map(spec string) error {
	placements, err := ParseMapping(spec)
	if err != nil {
		return fmt.Errorf("dps: collection %q: %w", tc.name, err)
	}
	return tc.MapNodes(placements...)
}

// MapNodes places thread i on nodes[i].
func (tc *ThreadCollection) MapNodes(nodes ...string) error {
	if len(nodes) == 0 {
		return fmt.Errorf("dps: collection %q: empty mapping", tc.name)
	}
	for _, n := range nodes {
		if !tc.app.hasNode(n) {
			return fmt.Errorf("dps: collection %q: unknown node %q", tc.name, n)
		}
	}
	tc.mu.Lock()
	tc.placements = append([]string(nil), nodes...)
	tc.mu.Unlock()
	return nil
}

// MapRoundRobin places n threads across the application's nodes in order,
// wrapping around (a convenience not in the paper but implied by its
// dynamic mapping facilities).
func (tc *ThreadCollection) MapRoundRobin(n int) error {
	all := tc.app.NodeNames()
	if len(all) == 0 {
		return fmt.Errorf("dps: collection %q: application has no nodes", tc.name)
	}
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = all[i%len(all)]
	}
	return tc.MapNodes(nodes...)
}

// ThreadCount returns the number of mapped threads.
func (tc *ThreadCollection) ThreadCount() int {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return len(tc.placements)
}

// NodeOf returns the cluster node hosting thread i.
func (tc *ThreadCollection) NodeOf(i int) (string, error) {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	if i < 0 || i >= len(tc.placements) {
		return "", fmt.Errorf("dps: collection %q: thread index %d out of range [0,%d)", tc.name, i, len(tc.placements))
	}
	return tc.placements[i], nil
}

// Placements returns a copy of the node assignment of every thread.
func (tc *ThreadCollection) Placements() []string {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return append([]string(nil), tc.placements...)
}

// ParseMapping parses the paper's thread-mapping string syntax
// ("nodeA*2 nodeB nodeC*3") into an explicit per-thread node list.
func ParseMapping(spec string) ([]string, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty mapping string")
	}
	var out []string
	for _, f := range fields {
		name := f
		count := 1
		if i := strings.IndexByte(f, '*'); i >= 0 {
			name = f[:i]
			c, err := strconv.Atoi(f[i+1:])
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("bad multiplier in %q", f)
			}
			count = c
		}
		if name == "" {
			return nil, fmt.Errorf("empty node name in %q", f)
		}
		for j := 0; j < count; j++ {
			out = append(out, name)
		}
	}
	return out, nil
}

// StateOf returns the current thread's state as *S. It panics if the
// thread's collection was not declared with state type S, surfacing wiring
// mistakes immediately (the analogue of the paper's compile-time thread
// type parameter).
func StateOf[S any](c *Ctx) *S {
	s, ok := c.State().(*S)
	if !ok {
		panic(fmt.Sprintf("dps: thread state is %T, not *%s", c.State(), reflect.TypeOf((*S)(nil)).Elem()))
	}
	return s
}
