package core

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core/place"
)

// ThreadCollection is a named group of DPS threads. Each thread carries a
// private instance of the collection's state type S (the paper's thread
// class members, used to build distributed data structures) and is placed
// on a cluster node by Map. The placement is an epoch-versioned table
// owned by the placement layer (internal/core/place); while flow graphs
// execute it may only change through the live-remap protocol (Remap /
// RemapThread), which quiesces the affected instance, migrates its state
// and forwards in-flight tokens.
//
// Threads are instantiated lazily on their node the first time a token is
// routed to them, mirroring the paper's on-demand application deployment.
type ThreadCollection struct {
	app       *App
	name      string
	stateType reflect.Type // nil for stateless collections
	newState  func() any

	place place.Table

	// Fault-tolerance hooks (ftengine.go): checkpoint eligibility is
	// computed once (the state type never changes), and onRecover observes
	// failover re-placements.
	ckptOnce sync.Once
	ckptOK   bool

	recoverMu sync.Mutex
	onRecover func(thread int, from, to string)
}

// NewCollection creates a thread collection whose threads each own a
// zero-initialized *S. Use struct{} for stateless collections.
func NewCollection[S any](app *App, name string) (*ThreadCollection, error) {
	st := reflect.TypeOf((*S)(nil)).Elem()
	tc := &ThreadCollection{
		app:       app,
		name:      name,
		stateType: st,
		newState:  func() any { return new(S) },
	}
	if err := app.addCollection(tc); err != nil {
		return nil, err
	}
	return tc, nil
}

// MustCollection is NewCollection panicking on error, for example setup code.
func MustCollection[S any](app *App, name string) *ThreadCollection {
	tc, err := NewCollection[S](app, name)
	if err != nil {
		panic(err)
	}
	return tc
}

// Name returns the collection's name.
func (tc *ThreadCollection) Name() string { return tc.name }

// Map places the collection's threads on cluster nodes using the paper's
// mapping-string syntax: node names separated by spaces with an optional
// multiplier, e.g. "nodeA*2 nodeB" creates threads 0 and 1 on nodeA and
// thread 2 on nodeB. Map replaces any previous mapping. While a flow graph
// using the collection has calls in flight a replacement is rejected —
// remapping a live collection must go through Remap, which migrates thread
// state and forwards in-flight tokens instead of silently misrouting them.
func (tc *ThreadCollection) Map(spec string) error {
	placements, err := ParseMapping(spec)
	if err != nil {
		return fmt.Errorf("dps: collection %q: %w", tc.name, err)
	}
	return tc.MapNodes(placements...)
}

// MapNodes places thread i on nodes[i]. Like Map, it rejects replacing the
// mapping of a collection while calls are executing.
func (tc *ThreadCollection) MapNodes(nodes ...string) error {
	if len(nodes) == 0 {
		return fmt.Errorf("dps: collection %q: empty mapping", tc.name)
	}
	for _, n := range nodes {
		if !tc.app.hasNode(n) {
			return fmt.Errorf("dps: collection %q: unknown node %q", tc.name, n)
		}
	}
	return tc.app.replaceMapping(tc, nodes)
}

// MapRoundRobin places n threads across the application's nodes in order,
// wrapping around (a convenience not in the paper but implied by its
// dynamic mapping facilities).
func (tc *ThreadCollection) MapRoundRobin(n int) error {
	all := tc.app.NodeNames()
	if len(all) == 0 {
		return fmt.Errorf("dps: collection %q: application has no nodes", tc.name)
	}
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = all[i%len(all)]
	}
	return tc.MapNodes(nodes...)
}

// Remap live-migrates the collection to a new placement given in the
// paper's mapping-string syntax, while flow graphs keep executing. The new
// placement must keep the thread count (merge routing and credit trackers
// are sized by it); every thread whose node changes goes through the
// migration protocol: its instance is quiesced on the old node, its state
// serialized and shipped to the new owner, the placement epoch bumped, and
// a relay installed so in-flight tokens routed with the stale placement
// are forwarded in order.
//
// ctx bounds the quiesce of each thread (an instance busy inside an
// operation, or collecting an open merge group, is migrated only once it
// falls idle). When ctx has no deadline, Config.RemapDrain applies. Threads
// migrate one at a time; on error the failed thread's migration is rolled
// back (its placement unchanged, held tokens re-dispatched) but threads
// already moved stay moved — consult Placements for the partial progress.
// Traffic continues undisturbed either way.
func (tc *ThreadCollection) Remap(ctx context.Context, spec string) error {
	placements, err := ParseMapping(spec)
	if err != nil {
		return fmt.Errorf("dps: collection %q: %w", tc.name, err)
	}
	return tc.RemapNodes(ctx, placements...)
}

// RemapNodes is Remap with an explicit per-thread node list.
func (tc *ThreadCollection) RemapNodes(ctx context.Context, nodes ...string) error {
	cur := tc.Placements()
	if len(cur) == 0 {
		return fmt.Errorf("dps: collection %q: not mapped; use Map first", tc.name)
	}
	for _, n := range nodes {
		if !tc.app.hasNode(n) {
			return fmt.Errorf("dps: collection %q: unknown node %q", tc.name, n)
		}
	}
	moves, err := place.Plan(cur, nodes)
	if err != nil {
		return fmt.Errorf("dps: collection %q: %w", tc.name, err)
	}
	for _, mv := range moves {
		if err := tc.app.migrateThread(ctx, tc, mv.Thread, mv.To); err != nil {
			return err
		}
	}
	return nil
}

// RemapThread live-migrates a single thread to the given node (see Remap).
func (tc *ThreadCollection) RemapThread(ctx context.Context, thread int, node string) error {
	if !tc.app.hasNode(node) {
		return fmt.Errorf("dps: collection %q: unknown node %q", tc.name, node)
	}
	if _, err := tc.NodeOf(thread); err != nil {
		return err
	}
	return tc.app.migrateThread(ctx, tc, thread, node)
}

// ThreadCount returns the number of mapped threads.
func (tc *ThreadCollection) ThreadCount() int { return tc.place.Len() }

// Epoch returns the placement table's version; it increases on every Map
// and on every completed thread migration.
func (tc *ThreadCollection) Epoch() uint64 { return tc.place.Epoch() }

// NodeOf returns the cluster node hosting thread i.
func (tc *ThreadCollection) NodeOf(i int) (string, error) {
	node, ok := tc.place.NodeOf(i)
	if !ok {
		return "", fmt.Errorf("dps: collection %q: thread index %d out of range [0,%d)", tc.name, i, tc.place.Len())
	}
	return node, nil
}

// Placements returns a copy of the node assignment of every thread.
func (tc *ThreadCollection) Placements() []string {
	_, nodes := tc.place.Snapshot()
	return nodes
}

// ParseMapping parses the paper's thread-mapping string syntax
// ("nodeA*2 nodeB nodeC*3") into an explicit per-thread node list.
func ParseMapping(spec string) ([]string, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty mapping string")
	}
	var out []string
	for _, f := range fields {
		name := f
		count := 1
		if i := strings.IndexByte(f, '*'); i >= 0 {
			name = f[:i]
			c, err := strconv.Atoi(f[i+1:])
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("bad multiplier in %q", f)
			}
			count = c
		}
		if name == "" {
			return nil, fmt.Errorf("empty node name in %q", f)
		}
		for j := 0; j < count; j++ {
			out = append(out, name)
		}
	}
	return out, nil
}

// OnRecover installs a callback observing failover re-placements of this
// collection's threads: after a node death, fn is invoked once per moved
// thread with the dead node and the surviving node the thread was restored
// on (from its newest checkpoint, with in-flight tokens replayed). The
// callback runs on the recovery coordinator's goroutine after the thread
// is live again; keep it brief.
func (tc *ThreadCollection) OnRecover(fn func(thread int, from, to string)) {
	tc.recoverMu.Lock()
	tc.onRecover = fn
	tc.recoverMu.Unlock()
}

func (tc *ThreadCollection) notifyRecover(thread int, from, to string) {
	tc.recoverMu.Lock()
	fn := tc.onRecover
	tc.recoverMu.Unlock()
	if fn != nil {
		fn(thread, from, to)
	}
}

// checkpointable reports whether the collection's instances can be
// checkpointed and restored: stateless, or a registered fully-exported
// struct state — the same constraint live migration imposes, computed once.
func (tc *ThreadCollection) checkpointable() bool {
	tc.ckptOnce.Do(func() {
		tc.ckptOK = tc.app.validateMigratableState(tc) == nil
	})
	return tc.ckptOK
}

// StateOf returns the current thread's state as *S. It panics if the
// thread's collection was not declared with state type S, surfacing wiring
// mistakes immediately (the analogue of the paper's compile-time thread
// type parameter).
func StateOf[S any](c *Ctx) *S {
	s, ok := c.State().(*S)
	if !ok {
		panic(fmt.Sprintf("dps: thread state is %T, not *%s", c.State(), reflect.TypeOf((*S)(nil)).Elem()))
	}
	return s
}
