package core

// White-box cancellation accounting: canceling a call on a graph with
// nested split–merge groups must leave no split-side group state behind.
// Each inner group's reap owes one acknowledgement to its enclosing group
// (the merge output that would normally carry it never exists), so without
// that settling the outer groups stay non-quiescent in rt.groups forever —
// per-cancellation state growth that wakeBlocked then iterates for the
// application's lifetime.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serial"
)

type nestTok struct {
	N int
}

type nestSum struct {
	Sum int
}

var (
	_ = serial.MustRegister[nestTok]()
	_ = serial.MustRegister[nestSum]()
)

// TestCancelReapsStreamGroups is the stream-shaped variant: the stream
// both closes the split's group and opens its own, so cancellation must
// settle the accounting of two chained groups per call (the stream's
// subtree carries the frame *below* its input group onward — recording the
// wrong frame would over-release the collected group and leak the rest).
func TestCancelReapsStreamGroups(t *testing.T) {
	app, err := NewLocalApp(Config{Window: 2}, "n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	main := MustCollection[struct{}](app, "s-main")
	if err := main.Map("n0"); err != nil {
		t.Fatal(err)
	}
	work := MustCollection[struct{}](app, "s-work")
	if err := work.Map("n1"); err != nil {
		t.Fatal(err)
	}
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})

	split := Split[*nestTok, *nestTok]("s-split",
		func(c *Ctx, in *nestTok, post func(*nestTok)) {
			for i := 0; i < in.N; i++ {
				post(&nestTok{N: i})
			}
		})
	stage := Leaf[*nestTok, *nestTok]("s-stage",
		func(c *Ctx, in *nestTok) *nestTok {
			if blocking.Load() {
				<-hold
			}
			return in
		})
	relay := Stream[*nestTok, *nestTok]("s-relay",
		func(c *Ctx, first *nestTok, next func() (*nestTok, bool), post func(*nestTok)) {
			for in, ok := first, true; ok; in, ok = next() {
				post(in)
			}
		})
	final := Merge[*nestTok, *nestSum]("s-final",
		func(c *Ctx, first *nestTok, next func() (*nestTok, bool)) *nestSum {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &nestSum{Sum: n}
		})
	g, err := app.NewFlowgraph("s-stream", Path(
		NewNode(split, main, MainRoute()),
		NewNode(stage, work, RoundRobin()),
		NewNode(relay, work, MainRoute()),
		NewNode(final, main, MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.CallFrom(ctx, app.MasterNode(), &nestTok{N: 8})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled stream call returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled stream call did not return")
	}
	blocking.Store(false)
	close(hold)

	waitGroupsReaped(t, app)
	// The graph must stay fully usable afterwards.
	for i := 0; i < 3; i++ {
		out, err := g.CallTimeout(app.MasterNode(), &nestTok{N: 5}, 30*time.Second)
		if err != nil {
			t.Fatalf("call %d after stream cancellation: %v", i, err)
		}
		if got := out.(*nestSum).Sum; got != 5 {
			t.Fatalf("call %d merged %d, want 5", i, got)
		}
	}
	waitGroupsReaped(t, app)
	if err := app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
}

// waitGroupsReaped polls until every runtime's split-side group table and
// every instance's merge-side group table are empty and every
// load-balancing credit charge has been released. A lost credit release
// (e.g. an acknowledgement arriving after its group was over-released and
// prematurely reaped) permanently skews LoadBalanced routing.
func waitGroupsReaped(t *testing.T, app *App) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		splitGroups, mergeGroups, credits := 0, 0, 0
		app.mu.Lock()
		for _, rt := range app.runtimes {
			splitGroups += len(rt.groups.all())
			rt.mu.Lock()
			for _, inst := range rt.threads {
				inst.mu.Lock()
				mergeGroups += len(inst.groups)
				inst.mu.Unlock()
			}
			for _, ct := range rt.credits {
				for i := 0; i < 16; i++ {
					credits += ct.Outstanding(i)
				}
			}
			rt.mu.Unlock()
		}
		app.mu.Unlock()
		if splitGroups == 0 && mergeGroups == 0 && credits == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked after cancellation: %d split group(s), %d merge group(s), %d credit charge(s)",
				splitGroups, mergeGroups, credits)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelReapsNestedSplitGroups(t *testing.T) {
	app, err := NewLocalApp(Config{Window: 2}, "n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	main := MustCollection[struct{}](app, "w-main")
	if err := main.Map("n0"); err != nil {
		t.Fatal(err)
	}
	work := MustCollection[struct{}](app, "w-work")
	if err := work.Map("n1"); err != nil {
		t.Fatal(err)
	}
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})

	outerSplit := Split[*nestTok, *nestTok]("w-osplit",
		func(c *Ctx, in *nestTok, post func(*nestTok)) {
			for i := 0; i < in.N; i++ {
				post(&nestTok{N: 4})
			}
		})
	innerSplit := Split[*nestTok, *nestTok]("w-isplit",
		func(c *Ctx, in *nestTok, post func(*nestTok)) {
			for i := 0; i < in.N; i++ {
				post(&nestTok{N: i})
			}
		})
	leaf := Leaf[*nestTok, *nestTok]("w-leaf",
		func(c *Ctx, in *nestTok) *nestTok {
			if blocking.Load() {
				<-hold
			}
			return in
		})
	innerMerge := Merge[*nestTok, *nestSum]("w-imerge",
		func(c *Ctx, first *nestTok, next func() (*nestTok, bool)) *nestSum {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &nestSum{Sum: n}
		})
	outerMerge := Merge[*nestSum, *nestSum]("w-omerge",
		func(c *Ctx, first *nestSum, next func() (*nestSum, bool)) *nestSum {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &nestSum{Sum: sum}
		})
	g, err := app.NewFlowgraph("w-nested", Path(
		NewNode(outerSplit, main, MainRoute()),
		NewNode(innerSplit, work, RoundRobin()),
		NewNode(leaf, work, RoundRobin()),
		NewNode(innerMerge, work, MainRoute()),
		NewNode(outerMerge, main, MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.CallFrom(ctx, app.MasterNode(), &nestTok{N: 8})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled call did not return")
	}
	blocking.Store(false)
	close(hold)

	// Every group — outer split groups and merge-side state included —
	// must drain and reap.
	waitGroupsReaped(t, app)
	if err := app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
}
