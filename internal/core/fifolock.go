package core

import "sync"

// fifoLock is a mutual-exclusion lock granting ownership in reservation
// order. DPS serializes the operation bodies executing on one thread; the
// dispatcher reserves a ticket synchronously when a token arrives so that
// executions start in arrival order, even though each runs in its own
// goroutine. Operations release the lock while blocked (merge Next, flow
// controlled Post, graph calls), which reproduces the paper's behaviour of
// a thread whose split is stalled still making progress on its merge.
type fifoLock struct {
	mu      sync.Mutex
	locked  bool
	waiters []chan struct{}
}

// ticket is a reservation for the lock.
type ticket struct {
	ch <-chan struct{}
}

// grantedTicket is the shared already-closed channel returned by
// uncontended reservations, so the dispatch hot path reserves without
// allocating.
var grantedTicket = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// reserve enqueues a reservation. The returned ticket's wait() blocks until
// the lock is owned by the caller.
func (l *fifoLock) reserve() ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.locked && len(l.waiters) == 0 {
		l.locked = true
		return ticket{ch: grantedTicket}
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	return ticket{ch: ch}
}

func (t ticket) wait() { <-t.ch }

// lock reserves and waits.
func (l *fifoLock) lock() { l.reserve().wait() }

// unlock passes ownership to the oldest waiter, if any.
func (l *fifoLock) unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.locked {
		panic("core: unlock of unlocked fifoLock")
	}
	if len(l.waiters) > 0 {
		ch := l.waiters[0]
		l.waiters = l.waiters[1:]
		close(ch)
		return
	}
	l.locked = false
}
