package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCancelStormDrainsRegistry is the sharded registry under the PR 3
// cancellation contract at scale: thousands of concurrent calls with the
// workers parked, half of them canceled mid-flight, then the workers
// released. Every call must settle in exactly one way, every window slot
// and credit must come back, every registry shard must drain to empty, and
// a follow-up call through the same graph must complete.
func TestCancelStormDrainsRegistry(t *testing.T) {
	calls := 10_000
	if testing.Short() {
		calls = 1_000
	}
	app := newLocalApp(t, core.Config{Window: 8}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	g := buildCancelGraph(t, app, "storm", &blocking, hold)

	type pending struct {
		ch     <-chan core.CallResult
		cancel context.CancelFunc
	}
	inflight := make([]pending, calls)
	for i := range inflight {
		ctx, cancel := context.WithCancel(context.Background())
		ch, err := g.CallAsyncFrom(ctx, app.MasterNode(), &CountToken{N: 1})
		if err != nil {
			t.Fatalf("call %d not admitted: %v", i, err)
		}
		inflight[i] = pending{ch: ch, cancel: cancel}
	}
	if got := app.PendingCalls(); got != calls {
		t.Fatalf("PendingCalls = %d with %d calls in flight", got, calls)
	}
	// Cancel every odd call while its work is parked mid-flight.
	for i := 1; i < calls; i += 2 {
		inflight[i].cancel()
	}
	blocking.Store(false)
	close(hold)

	deadline := time.After(4 * time.Minute)
	for i, p := range inflight {
		select {
		case res := <-p.ch:
			switch {
			case res.Err == nil:
				// Completed — legal for canceled calls too when the result
				// won the race with the cancellation.
			case i%2 == 1 && errors.Is(res.Err, context.Canceled):
			default:
				t.Fatalf("call %d settled with %v", i, res.Err)
			}
		case <-deadline:
			t.Fatalf("call %d never settled: storm hung", i)
		}
		p.cancel()
	}
	if got := app.PendingCalls(); got != 0 {
		t.Fatalf("%d calls still pending after every result was delivered", got)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("application failed during the storm: %v", err)
	}
	// The storm must have released every window slot and credit: a fresh
	// call through the same split group machinery completes.
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 5}, 30*time.Second)
	if err != nil {
		t.Fatalf("follow-up call after the storm: %v", err)
	}
	if got := out.(*SumToken).Sum; got != 5 {
		t.Fatalf("follow-up call merged %d tokens, want 5", got)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("application failed after the follow-up call: %v", err)
	}
}

// TestAdmissionBudgetSheds exercises MaxInFlightCalls end to end: the
// budget admits exactly its size, the next call sheds with ErrOverload
// without posting anything, and once the admitted calls settle the budget
// is whole again. Stats attribute every outcome.
func TestAdmissionBudgetSheds(t *testing.T) {
	app := newLocalApp(t, core.Config{MaxInFlightCalls: 4}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	g := buildCancelGraph(t, app, "budget", &blocking, hold)

	chans := make([]<-chan core.CallResult, 4)
	for i := range chans {
		ch, err := g.CallAsyncFrom(context.Background(), app.MasterNode(), &CountToken{N: 1})
		if err != nil {
			t.Fatalf("call %d within the budget refused: %v", i, err)
		}
		chans[i] = ch
	}
	if _, err := g.CallFrom(context.Background(), app.MasterNode(), &CountToken{N: 1}); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("call beyond the budget returned %v, want ErrOverload", err)
	}
	if got := app.PendingCalls(); got != 4 {
		t.Fatalf("PendingCalls = %d, want 4 (the shed call must not count)", got)
	}

	blocking.Store(false)
	close(hold)
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("admitted call %d failed: %v", i, res.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("admitted call %d never settled", i)
		}
	}
	if got := app.PendingCalls(); got != 0 {
		t.Fatalf("PendingCalls = %d after the drain, want 0", got)
	}
	// The budget is whole again: a fresh synchronous call is admitted.
	if _, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 1}, 30*time.Second); err != nil {
		t.Fatalf("call after the drain: %v", err)
	}

	s := app.Stats()
	if s.CallsAdmitted != 5 {
		t.Fatalf("CallsAdmitted = %d, want 5 (the 4 held calls and the follow-up; the shed call was never admitted)", s.CallsAdmitted)
	}
	if s.CallsRejected != 1 {
		t.Fatalf("CallsRejected = %d, want 1", s.CallsRejected)
	}
	if s.CallsExpired != 0 {
		t.Fatalf("CallsExpired = %d, want 0", s.CallsExpired)
	}
}

// TestAdmissionDeadlineExpiryCounted: a call whose context deadline fires
// mid-flight settles with the deadline error, releases its budget slot, and
// is attributed to CallsExpired (not CallsRejected).
func TestAdmissionDeadlineExpiryCounted(t *testing.T) {
	app := newLocalApp(t, core.Config{MaxInFlightCalls: 2}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	g := buildCancelGraph(t, app, "expiry", &blocking, hold)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := g.CallFrom(ctx, app.MasterNode(), &CountToken{N: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parked call returned %v, want DeadlineExceeded", err)
	}
	blocking.Store(false)
	close(hold)

	// The expired call must have released its slot and left the registry.
	if _, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 1}, 30*time.Second); err != nil {
		t.Fatalf("call after the expiry: %v", err)
	}
	if got := app.PendingCalls(); got != 0 {
		t.Fatalf("PendingCalls = %d, want 0", got)
	}
	s := app.Stats()
	if s.CallsExpired != 1 {
		t.Fatalf("CallsExpired = %d, want 1", s.CallsExpired)
	}
	if s.CallsAdmitted != 2 {
		t.Fatalf("CallsAdmitted = %d, want 2 (the expired call and the follow-up)", s.CallsAdmitted)
	}
	if s.CallsRejected != 0 {
		t.Fatalf("CallsRejected = %d, want 0", s.CallsRejected)
	}
}
