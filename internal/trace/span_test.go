package trace

import (
	"testing"
)

func TestRingRecordAndFilter(t *testing.T) {
	r := NewRing(8)
	r.Record(Span{Trace: 1, Kind: "post", Node: "a", Start: 10})
	r.Record(Span{Trace: 2, Kind: "post", Node: "a", Start: 11})
	r.Record(Span{Trace: 1, Kind: "execute", Node: "a", Start: 12})

	got := r.Spans(1)
	if len(got) != 2 || got[0].Kind != "post" || got[1].Kind != "execute" {
		t.Fatalf("trace 1 spans = %+v", got)
	}
	if all := r.Spans(0); len(all) != 3 {
		t.Fatalf("all spans = %d, want 3", len(all))
	}
	if none := r.Spans(99); len(none) != 0 {
		t.Fatalf("unknown trace returned %d spans", len(none))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(Span{Trace: uint64(i), Start: int64(i)})
	}
	got := r.Spans(0)
	if len(got) != 4 {
		t.Fatalf("full ring holds %d spans, want 4", len(got))
	}
	// Oldest two (traces 1, 2) were overwritten; recording order preserved.
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].Trace != want {
			t.Fatalf("span %d trace = %d, want %d (recording order)", i, got[i].Trace, want)
		}
	}
}

func TestRingDefaultSize(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < DefaultRingSize+10; i++ {
		r.Record(Span{Trace: 7})
	}
	if got := len(r.Spans(7)); got != DefaultRingSize {
		t.Fatalf("default ring holds %d, want %d", got, DefaultRingSize)
	}
}

func TestSortSpansTimeline(t *testing.T) {
	spans := []Span{
		{Trace: 1, Kind: "execute", Node: "b", Start: 20},
		{Trace: 1, Kind: "wire", Node: "a", Start: 20},
		{Trace: 1, Kind: "post", Node: "a", Start: 10},
	}
	SortSpans(spans)
	if spans[0].Kind != "post" {
		t.Fatalf("earliest span should sort first, got %+v", spans[0])
	}
	// Equal starts tie-break by node then kind for deterministic dumps.
	if spans[1].Node != "a" || spans[2].Node != "b" {
		t.Fatalf("tie-break order wrong: %+v", spans[1:])
	}
}
