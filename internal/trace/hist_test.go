package trace

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistZeroValue(t *testing.T) {
	var h Hist
	if h.Len() != 0 || h.Median() != 0 || h.Percentile(99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistExactAggregates(t *testing.T) {
	var h Hist
	vals := []time.Duration{3 * time.Millisecond, time.Microsecond, 2 * time.Second, 40 * time.Microsecond}
	var sum time.Duration
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(vals))
	}
	if h.Min() != time.Microsecond || h.Max() != 2*time.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != sum || h.Mean() != sum/time.Duration(len(vals)) {
		t.Fatalf("sum/mean = %v/%v", h.Sum(), h.Mean())
	}
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Fatal("extreme percentiles must be the exact min and max")
	}
}

func TestHistPercentileResolution(t *testing.T) {
	// Percentiles of a log-uniform stream must land within one bucket
	// (≈9% relative error) of the exact sorted-sample percentile.
	rng := rand.New(rand.NewSource(7))
	var h Hist
	var s Samples
	for i := 0; i < 20_000; i++ {
		d := time.Duration(math.Pow(10, 3+4*rng.Float64())) // 1µs .. 10s in ns
		h.Add(d)
		s.Add(d)
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		got, want := h.Percentile(p), s.Percentile(p)
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("p%v: hist %v vs exact %v (ratio %.3f)", p, got, want, ratio)
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
		all.Add(d)
	}
	var merged Hist
	merged.Merge(&a)
	merged.Merge(&b)
	if merged != all {
		t.Fatal("merge of disjoint halves differs from recording everything into one histogram")
	}
	var empty Hist
	merged.Merge(&empty)
	if merged != all {
		t.Fatal("merging an empty histogram changed the receiver")
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Add(time.Duration(i) * 37 * time.Microsecond)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("JSON round trip changed the histogram")
	}
	// The wire form carries derived percentiles for consumers.
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "sum_ns", "p50_ns", "p99_ns", "p999_ns", "buckets"} {
		if _, ok := wire[k]; !ok {
			t.Fatalf("wire form missing %q: %s", k, data)
		}
	}
}

func TestHistUnmarshalRejectsBadBucket(t *testing.T) {
	var h Hist
	if err := json.Unmarshal([]byte(`{"count":1,"buckets":[[9999,1]]}`), &h); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Len() != 1 {
		t.Fatal("negative sample must clamp to zero")
	}
}

func TestHistBucketsIteration(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Millisecond, time.Second} {
		h.Add(d)
	}
	var total int64
	var last time.Duration = -1
	h.Buckets(func(upper time.Duration, count int64) {
		if count <= 0 {
			t.Fatalf("bucket %v reported empty count %d", upper, count)
		}
		if upper <= last {
			t.Fatalf("bucket bounds not ascending: %v after %v", upper, last)
		}
		last = upper
		total += count
	})
	if total != int64(h.Len()) {
		t.Fatalf("bucket counts sum to %d, histogram holds %d", total, h.Len())
	}
}

func TestHistJSONCarriesP90(t *testing.T) {
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"p50_ns", "p90_ns", "p99_ns", "p999_ns"} {
		if _, ok := m[k]; !ok {
			t.Errorf("marshaled histogram missing %s: %s", k, data)
		}
	}
}
