package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// Hist bucket geometry: 8 buckets per octave (≈9% relative resolution) from
// 1µs up to ~18 minutes, plus an underflow bucket. A histogram is a fixed
// 2KB value — Add is O(log buckets) with no allocation, so per-goroutine
// histograms can be kept on saturation hot paths and merged afterwards.
const (
	histBucketsPerOctave = 8
	histOctaves          = 30
	histBuckets          = histOctaves*histBucketsPerOctave + 1
)

// histBounds[i] is the inclusive upper bound of bucket i; filled by init
// with the geometric series 1µs · 2^(i/8).
var histBounds [histBuckets]time.Duration

func init() {
	for i := range histBounds {
		us := math.Pow(2, float64(i)/histBucketsPerOctave)
		histBounds[i] = time.Duration(math.Ceil(us * float64(time.Microsecond)))
	}
}

// Hist is a mergeable latency histogram with logarithmic buckets: constant
// memory regardless of sample count, percentiles within the bucket
// resolution (≈9%), exact count/sum/min/max. The zero value is ready to
// use. It implements the same read API as Samples (Len, Median, Percentile,
// Min, Max, Mean), so report code works against either; unlike Samples it
// is cheap to merge across goroutines and to encode into -json artifacts.
//
// Hist is not synchronized: concurrent recorders keep one each and Merge
// them when done.
type Hist struct {
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

// Add records one sample.
func (h *Hist) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

// bucketOf returns the index of the first bucket whose upper bound holds d.
func bucketOf(d time.Duration) int {
	i := sort.Search(histBuckets, func(i int) bool { return histBounds[i] >= d })
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Merge accumulates o's samples into h.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// Len returns the number of samples recorded.
func (h *Hist) Len() int { return int(h.count) }

// Median returns the 50th percentile; zero when empty.
func (h *Hist) Median() time.Duration { return h.Percentile(50) }

// Percentile returns the p-th percentile (0..100) by nearest rank at the
// histogram's bucket resolution: the upper bound of the bucket holding the
// rank, clamped to the exact observed min and max.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := histBounds[i]
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Mean returns the average sample; zero when empty.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample; zero when empty.
func (h *Hist) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Hist) Max() time.Duration { return h.max }

// Sum returns the total of all samples.
func (h *Hist) Sum() time.Duration { return h.sum }

// Buckets calls fn once per non-empty bucket in ascending bound order, with
// the bucket's inclusive upper bound and its (non-cumulative) count. It is
// the export hook for encoders (promtext) that need the geometry without
// reaching into the fixed array.
func (h *Hist) Buckets(fn func(upper time.Duration, count int64)) {
	for i, c := range h.buckets {
		if c != 0 {
			fn(histBounds[i], c)
		}
	}
}

// histJSON is the wire form of a Hist: exact aggregates, sparse non-empty
// buckets as [index, count] pairs, and derived percentiles included for
// human and plotting convenience (ignored when decoding).
type histJSON struct {
	Count   int64      `json:"count"`
	SumNs   int64      `json:"sum_ns"`
	MinNs   int64      `json:"min_ns,omitempty"`
	MaxNs   int64      `json:"max_ns,omitempty"`
	P50Ns   int64      `json:"p50_ns,omitempty"`
	P90Ns   int64      `json:"p90_ns,omitempty"`
	P99Ns   int64      `json:"p99_ns,omitempty"`
	P999Ns  int64      `json:"p999_ns,omitempty"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h Hist) MarshalJSON() ([]byte, error) {
	out := histJSON{
		Count:  h.count,
		SumNs:  int64(h.sum),
		MinNs:  int64(h.min),
		MaxNs:  int64(h.max),
		P50Ns:  int64(h.Percentile(50)),
		P90Ns:  int64(h.Percentile(90)),
		P99Ns:  int64(h.Percentile(99)),
		P999Ns: int64(h.Percentile(99.9)),
	}
	for i, c := range h.buckets {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; the derived percentile fields
// of the wire form are ignored (they are recomputed from the buckets).
func (h *Hist) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Hist{
		count: in.Count,
		sum:   time.Duration(in.SumNs),
		min:   time.Duration(in.MinNs),
		max:   time.Duration(in.MaxNs),
	}
	for _, b := range in.Buckets {
		if b[0] < 0 || b[0] >= histBuckets {
			return fmt.Errorf("trace: histogram bucket index %d out of range", b[0])
		}
		h.buckets[b[0]] = b[1]
	}
	return nil
}
