// Package trace provides the timing and reporting utilities used by the
// experiment harness: duration samples with medians and percentiles,
// throughput computation, and plain-text table rendering for regenerating
// the paper's tables and figure series.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Samples accumulates duration measurements.
type Samples struct {
	values []time.Duration
}

// Add records one sample.
func (s *Samples) Add(d time.Duration) { s.values = append(s.values, d) }

// Len returns the number of samples.
func (s *Samples) Len() int { return len(s.values) }

// Median returns the middle sample (average of the two middles for even
// counts); zero when empty.
func (s *Samples) Median() time.Duration {
	return s.Percentile(50)
}

// Percentile returns the p-th percentile (0..100) by nearest-rank with
// midpoint interpolation at 50.
func (s *Samples) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	if p == 50 && len(sorted)%2 == 0 {
		a, b := sorted[len(sorted)/2-1], sorted[len(sorted)/2]
		return (a + b) / 2
	}
	// Clamp, never wrap: p/100*len rounds up to len for high percentiles of
	// small sample sets, and a modulo there would alias the maximum to the
	// minimum (p99 of 3 samples must be the largest sample, not the smallest).
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the average sample.
func (s *Samples) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.values {
		sum += v
	}
	return sum / time.Duration(len(s.values))
}

// Min returns the smallest sample.
func (s *Samples) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (s *Samples) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ThroughputMBs converts bytes moved in a duration to MB/s (1 MB = 1e6 B,
// as in the paper's Figure 6 axis).
func ThroughputMBs(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// Table renders rows of cells as a plain-text table with a header,
// right-aligning numeric-looking cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Stopwatch measures one interval.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Elapsed returns the time since start.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
