package promtext

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// parseExposition is a minimal Prometheus text-format parser for tests: it
// validates the line grammar the real scraper cares about (# HELP / # TYPE
// preambles, name{label="value"} value samples, one TYPE per name) and
// returns samples keyed by name plus sorted label string, and types by name.
// Tests parse the output rather than string-matching it, so the assertions
// hold under any valid formatting choice.
func parseExposition(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown metric type %q in %q", typ, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			for _, pair := range splitLabels(t, key[i+1:len(key)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("label without '=' in %q", line)
				}
				if _, err := strconv.Unquote(pair[eq+1:]); err != nil {
					t.Fatalf("label value not a quoted string in %q: %v", line, err)
				}
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	return samples, types
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestCounterAndGauge(t *testing.T) {
	enc := &Encoder{}
	enc.Counter("reqs_total", "requests served", 42)
	enc.Gauge("depth", "live depth", 3.5, Label{Name: "node", Value: "a"})
	samples, types := parseExposition(t, enc.String())
	if samples["reqs_total"] != 42 {
		t.Fatalf("reqs_total = %v", samples["reqs_total"])
	}
	if types["reqs_total"] != "counter" || types["depth"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	if samples[`depth{node="a"}`] != 3.5 {
		t.Fatalf("labeled gauge missing: %v", samples)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	enc := &Encoder{}
	enc.Gauge("g", "", 1, Label{Name: "v", Value: "a\"b\\c\nd"})
	// The parser unquotes every label value with strconv.Unquote; a
	// double-escaped or raw newline would fail there.
	samples, _ := parseExposition(t, enc.String())
	found := false
	for k := range samples {
		if strings.HasPrefix(k, "g{") {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped-label sample missing: %v", samples)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := &trace.Hist{}
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Millisecond, 40 * time.Millisecond} {
		h.Add(d)
	}
	enc := &Encoder{}
	enc.Histogram("lat_seconds", "latency", h)
	samples, types := parseExposition(t, enc.String())
	if types["lat_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	if got := samples[`lat_seconds_bucket{le="+Inf"}`]; got != 4 {
		t.Fatalf("+Inf bucket = %v, want 4", got)
	}
	if got := samples["lat_seconds_count"]; got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
	wantSum := h.Sum().Seconds()
	if got := samples["lat_seconds_sum"]; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, wantSum)
	}
	// Buckets are cumulative and monotone, and every finite bound is <= the
	// next one's count.
	var prev float64
	var bounds []float64
	for k, v := range samples {
		if !strings.HasPrefix(k, `lat_seconds_bucket{le="`) || strings.Contains(k, "+Inf") {
			continue
		}
		le, err := strconv.ParseFloat(k[len(`lat_seconds_bucket{le="`):len(k)-2], 64)
		if err != nil {
			t.Fatalf("bucket bound unparseable in %q: %v", k, err)
		}
		bounds = append(bounds, le)
		_ = v
	}
	if len(bounds) == 0 {
		t.Fatal("no finite buckets emitted")
	}
	// Walk in ascending bound order, checking monotonicity.
	for i := 0; i < len(bounds); i++ {
		min := i
		for j := i + 1; j < len(bounds); j++ {
			if bounds[j] < bounds[min] {
				min = j
			}
		}
		bounds[i], bounds[min] = bounds[min], bounds[i]
	}
	for _, b := range bounds {
		key := `lat_seconds_bucket{le="` + formatFloat(b) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("bucket %q vanished on re-lookup", key)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", v, prev)
		}
		prev = v
	}
	if prev > samples[`lat_seconds_bucket{le="+Inf"}`] {
		t.Fatal("finite bucket exceeds +Inf bucket")
	}
}

func TestStructExportsEveryInt64Field(t *testing.T) {
	type counters struct {
		TokensPosted   int64
		QueueHighWater int64
		BytesSent      int64
		hidden         int64
		Name           string
	}
	_ = counters{}.hidden
	enc := &Encoder{}
	enc.Struct("eng", &counters{TokensPosted: 7, QueueHighWater: 3, BytesSent: 11}, map[string]bool{"QueueHighWater": true})
	samples, types := parseExposition(t, enc.String())
	if samples["eng_tokens_posted"] != 7 || samples["eng_bytes_sent"] != 11 {
		t.Fatalf("counter fields missing: %v", samples)
	}
	if types["eng_queue_high_water"] != "gauge" {
		t.Fatalf("high-water field should be a gauge, types = %v", types)
	}
	if types["eng_tokens_posted"] != "counter" {
		t.Fatalf("monotonic field should be a counter, types = %v", types)
	}
	if _, ok := samples["eng_name"]; ok {
		t.Fatal("non-int64 field exported")
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"TokensPosted":   "tokens_posted",
		"BytesSent":      "bytes_sent",
		"QueueHighWater": "queue_high_water",
		"Handoffs":       "handoffs",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}
