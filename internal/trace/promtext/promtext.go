// Package promtext renders metrics in the Prometheus text exposition
// format (version 0.0.4) using only the standard library. It is the
// encoding half of the /metrics endpoints on dps-kernel and dps-gateway:
// callers feed it counters, gauges, trace.Hist histograms and whole
// counter structs (reflect-driven, so a struct gaining a field can never
// silently vanish from the scrape), and it produces the `# TYPE` /
// `name{labels} value` lines Prometheus scrapes.
package promtext

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// ContentType is the HTTP Content-Type of the rendered exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Encoder accumulates an exposition. The zero value is ready to use; it is
// not safe for concurrent use (build one per scrape).
type Encoder struct {
	sb    strings.Builder
	typed map[string]bool
}

// Counter emits one cumulative counter sample.
func (e *Encoder) Counter(name, help string, v float64, labels ...Label) {
	e.header(name, "counter", help)
	e.sample(name, labels, v)
}

// Gauge emits one instantaneous gauge sample.
func (e *Encoder) Gauge(name, help string, v float64, labels ...Label) {
	e.header(name, "gauge", help)
	e.sample(name, labels, v)
}

// Histogram emits a trace.Hist as a Prometheus histogram in seconds:
// cumulative `name_bucket{le="..."}` series over the histogram's non-empty
// buckets plus the mandatory +Inf bucket, `name_sum` and `name_count`.
// Per convention name should end in `_seconds`.
func (e *Encoder) Histogram(name, help string, h *trace.Hist, labels ...Label) {
	e.header(name, "histogram", help)
	cum := int64(0)
	h.Buckets(func(upper time.Duration, count int64) {
		cum += count
		le := Label{Name: "le", Value: formatFloat(upper.Seconds())}
		e.sample(name+"_bucket", append(append([]Label(nil), labels...), le), float64(cum))
	})
	inf := Label{Name: "le", Value: "+Inf"}
	e.sample(name+"_bucket", append(append([]Label(nil), labels...), inf), float64(h.Len()))
	e.sample(name+"_sum", labels, h.Sum().Seconds())
	e.sample(name+"_count", labels, float64(h.Len()))
}

// Struct emits every int64 field of s (a struct or pointer to one) as a
// metric named prefix_<snake_case_field>. Reflection makes the export
// complete by construction: a counter added to the struct appears in the
// next scrape without any registration step. High-water-mark fields (and
// any other non-monotonic ones) can be named in gauges; the rest are typed
// as counters.
func (e *Encoder) Struct(prefix string, s any, gauges map[string]bool, labels ...Label) {
	v := reflect.ValueOf(s)
	for v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		name := prefix + "_" + SnakeCase(f.Name)
		val := float64(v.Field(i).Int())
		if gauges[f.Name] {
			e.Gauge(name, f.Name, val, labels...)
		} else {
			e.Counter(name, f.Name, val, labels...)
		}
	}
}

// String returns the exposition rendered so far.
func (e *Encoder) String() string { return e.sb.String() }

// Bytes returns the exposition rendered so far.
func (e *Encoder) Bytes() []byte { return []byte(e.sb.String()) }

// header writes the # HELP / # TYPE preamble once per metric name.
func (e *Encoder) header(name, typ, help string) {
	if e.typed == nil {
		e.typed = make(map[string]bool)
	}
	if e.typed[name] {
		return
	}
	e.typed[name] = true
	if help != "" {
		fmt.Fprintf(&e.sb, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&e.sb, "# TYPE %s %s\n", name, typ)
}

func (e *Encoder) sample(name string, labels []Label, v float64) {
	e.sb.WriteString(name)
	if len(labels) > 0 {
		sorted := append([]Label(nil), labels...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		e.sb.WriteByte('{')
		for i, l := range sorted {
			if i > 0 {
				e.sb.WriteByte(',')
			}
			// Go's %q escapes exactly what the format requires of label
			// values: backslash, double quote and newline.
			fmt.Fprintf(&e.sb, "%s=%q", l.Name, l.Value)
		}
		e.sb.WriteByte('}')
	}
	e.sb.WriteByte(' ')
	e.sb.WriteString(formatFloat(v))
	e.sb.WriteByte('\n')
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros (the common case for counters), everything else in Go's
// shortest form, which Prometheus parses.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SnakeCase converts a Go CamelCase identifier to snake_case metric-name
// segments: TokensPosted -> tokens_posted, BytesSent -> bytes_sent. Runs
// of capitals stay one segment (QueueHighWater -> queue_high_water).
func SnakeCase(name string) string {
	var sb strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && (name[i-1] < 'A' || name[i-1] > 'Z') {
				sb.WriteByte('_')
			}
			sb.WriteByte(byte(r - 'A' + 'a'))
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
