package trace

import (
	"sort"
	"sync"
)

// Span is one recorded event of a sampled call: what happened (Kind), where
// (Node), to which operation or message (Name), when it started (Start,
// unix nanoseconds) and how long it took (Dur, nanoseconds; zero for point
// events). Trace is the sampled call's trace ID — the engine uses the call
// ID, which starts at a random 64-bit point per application, so IDs are
// unique across the processes of one deployment for all practical purposes.
//
// Span kinds recorded by the engine (see DESIGN.md, Observability):
//
//	post      — an operation posted this token (sender side)
//	queue     — time between dispatch enqueue and execution start
//	execute   — one operation body execution
//	stall     — a post blocked on the flow-control window
//	wire      — serialized transfer between two nodes (sender clock to
//	            receiver clock; cross-process skew applies)
//	forward   — a placement relay re-sent the token after a migration
//	replay    — a retained copy was re-sent during failure recovery
//	result    — the call's result was delivered to the caller
type Span struct {
	Trace uint64 `json:"trace"`
	Kind  string `json:"kind"`
	Node  string `json:"node"`
	Name  string `json:"name,omitempty"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns,omitempty"`
}

// DefaultRingSize is the per-node span buffer capacity: enough for several
// sampled calls' full journeys, small enough (a few hundred KB) to embed in
// every runtime.
const DefaultRingSize = 4096

// Ring is a fixed-size circular span buffer. Recording overwrites the
// oldest span once full — observability must never grow without bound or
// stall the engine. A Ring is safe for concurrent use; the unsampled hot
// path never reaches it (callers gate on the envelope's trace ID), so the
// mutex only serializes sampled traffic.
type Ring struct {
	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
}

// NewRing creates a ring holding up to size spans (DefaultRingSize if
// size <= 0).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{spans: make([]Span, size)}
}

// Record appends one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Spans returns the buffered spans of one trace in recording order, or every
// buffered span when trace is 0.
func (r *Ring) Spans(trace uint64) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.spans)
	}
	out := make([]Span, 0, n)
	appendFrom := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if trace == 0 || r.spans[i].Trace == trace {
				out = append(out, r.spans[i])
			}
		}
	}
	if r.full {
		appendFrom(r.next, len(r.spans))
	}
	appendFrom(0, r.next)
	return out
}

// SortSpans orders spans into a timeline: by start time, then by node and
// kind for deterministic output when starts tie.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Kind < b.Kind
	})
}
