package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSamplesMedianOdd(t *testing.T) {
	var s Samples
	for _, v := range []time.Duration{5, 1, 3} {
		s.Add(v)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("median = %d", got)
	}
}

func TestSamplesMedianEven(t *testing.T) {
	var s Samples
	for _, v := range []time.Duration{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Median(); got != 25 {
		t.Fatalf("median = %d", got)
	}
}

func TestSamplesEmpty(t *testing.T) {
	var s Samples
	if s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Fatal("empty samples should report zeros")
	}
}

func TestSamplesMinMaxMean(t *testing.T) {
	var s Samples
	for _, v := range []time.Duration{8, 2, 6} {
		s.Add(v)
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min/max = %d/%d", s.Min(), s.Max())
	}
	if got := s.Mean(); got != 5333333333/time.Duration(1e9) && got != 5 {
		// (8+2+6)/3 = 5 (integer division of durations)
		if got != 5 {
			t.Fatalf("mean = %d", got)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i))
	}
	if s.Percentile(0) != 1 {
		t.Fatalf("p0 = %d", s.Percentile(0))
	}
	if s.Percentile(100) != 100 {
		t.Fatalf("p100 = %d", s.Percentile(100))
	}
	p90 := s.Percentile(90)
	if p90 < 85 || p90 > 95 {
		t.Fatalf("p90 = %d", p90)
	}
}

func TestQuickMedianWithinRange(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Samples
		min, max := time.Duration(vals[0]), time.Duration(vals[0])
		for _, v := range vals {
			d := time.Duration(v)
			s.Add(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		m := s.Median()
		return m >= min && m <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputMBs(t *testing.T) {
	if got := ThroughputMBs(100e6, time.Second); got != 100 {
		t.Fatalf("got %g", got)
	}
	if got := ThroughputMBs(1e6, 0); got != 0 {
		t.Fatalf("zero duration should yield 0, got %g", got)
	}
	if got := ThroughputMBs(50e6, 500*time.Millisecond); got != 100 {
		t.Fatalf("got %g", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: all data lines equal length.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRowf("%d %s %.1f", 1, "x", 2.5)
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 3 || tb.Rows[0][2] != "2.5" {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(10 * time.Millisecond)
	if el := sw.Elapsed(); el < 5*time.Millisecond {
		t.Fatalf("elapsed %v too small", el)
	}
}

// Regression for the Percentile index clamp: the index used to be computed
// modulo the sample count, so a high percentile over few samples (p=99 over
// 3 samples gives index 2.97 -> 2, but p close enough to 100 gives the
// count itself) wrapped around to the SMALLEST sample instead of the
// largest. High percentiles must saturate at the max, never wrap.
func TestPercentileHighDoesNotWrap(t *testing.T) {
	var s Samples
	for _, v := range []time.Duration{10, 20, 30} {
		s.Add(v)
	}
	if got := s.Percentile(99); got != 30 {
		t.Fatalf("p99 over 3 samples = %d, want 30 (the max)", got)
	}
	var big Samples
	for i := 1; i <= 100; i++ {
		big.Add(time.Duration(i))
	}
	// p just under 100: index len(sorted)*0.99999 truncates to len-1 only
	// because of the clamp; the wrapped version returned the minimum.
	if got := big.Percentile(99.999); got != 100 {
		t.Fatalf("p99.999 over 100 samples = %d, want 100", got)
	}
}
