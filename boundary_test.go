package repro

// The public API boundary: internal/core is the engine, repro/dps is its
// only sanctioned consumer outside internal/. Everything else — examples,
// commands, and this root package — must program against repro/dps. This
// test parses every Go file outside internal/ and fails on a direct
// engine import, so the boundary cannot erode silently; CI runs it on
// every push.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const enginePrefix = "repro/internal/core"

func TestImportBoundary(t *testing.T) {
	var checked int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			// internal/ may use the engine freely; dps/ is the façade and
			// the single sanctioned consumer; skip VCS and tool dirs.
			if path == "internal" || path == "dps" || strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		checked++
		for _, imp := range f.Imports {
			val, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if val == enginePrefix || strings.HasPrefix(val, enginePrefix+"/") {
				t.Errorf("%s imports %s: packages outside internal/ must use repro/dps", path, val)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("boundary check walked no Go files; the test is broken")
	}
	t.Logf("checked %d Go files outside internal/ and dps/", checked)
}
