package repro

// The public API boundary: internal/core is the engine, repro/dps is its
// only sanctioned consumer outside internal/. The check itself lives in
// internal/analysis as the dps-vet boundary rule (CI also runs the full
// suite via cmd/dps-vet); this thin test keeps the guarantee wired into
// `go test ./...` at the repository root so the boundary cannot erode even
// where the linter is not run.

import (
	"testing"

	"repro/internal/analysis"
)

func TestImportBoundary(t *testing.T) {
	pkgs, err := analysis.Load(".", analysis.LoadConfig{SyntaxOnly: true, Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	var files int
	sawEngine := false
	for _, p := range pkgs {
		files += len(p.Files)
		if p.Path == "repro/internal/core" {
			sawEngine = true
		}
	}
	if files == 0 || !sawEngine {
		t.Fatalf("boundary check loaded %d files (engine package seen: %v); the load is broken, not the boundary", files, sawEngine)
	}
	for _, f := range analysis.Run(pkgs, []*analysis.Rule{analysis.ProjectBoundary()}) {
		t.Errorf("%s", f)
	}
	t.Logf("boundary-checked %d Go files across %d packages", files, len(pkgs))
}
