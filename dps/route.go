package dps

import "repro/internal/core"

// Route selects the thread instance that will process a token — the
// paper's routing function classes.
type Route = core.Route

// RouteCtx is the information available to a routing function when it
// picks a destination thread index inside the target collection.
type RouteCtx = core.RouteCtx

// RouteFn builds a route from a function of the token and the routing
// context. The function must return an index in [0, ThreadCount).
func RouteFn(name string, pick func(tok Token, rc RouteCtx) int) *Route {
	return core.RouteFn(name, pick)
}

// ToThread always routes to a fixed thread index.
func ToThread(i int) *Route { return core.ToThread(i) }

// MainRoute routes every token to thread 0 of the target collection (the
// paper's "main thread" route).
func MainRoute() *Route { return core.MainRoute() }

// RoundRobin cycles through the threads of the target collection in
// posting order. Each RoundRobin value carries its own counter.
func RoundRobin() *Route { return core.RoundRobin() }

// ByKey routes by a user-extracted integer key modulo the thread count.
func ByKey[In Token](name string, key func(in In) int) *Route {
	return core.ByKey[In](name, key)
}

// LoadBalanced routes each token to the thread with the fewest outstanding
// (un-acknowledged) tokens — the paper's feedback-driven load balancing.
// It requires the target node to sit between a split and its merge, where
// the engine maintains outstanding counters from merge acknowledgements.
func LoadBalanced() *Route { return core.LoadBalanced() }
