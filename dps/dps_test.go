package dps_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/dps"
)

// Tutorial token types (§3 of the paper).
type reqTok struct {
	Str string
}

type chrTok struct {
	Chr byte
	Pos int
}

type cntTok struct {
	N int
}

var (
	_ = dps.Register[reqTok]()
	_ = dps.Register[chrTok]()
	_ = dps.Register[cntTok]()
)

func newApp(t testing.TB, opts ...dps.Option) *dps.App {
	t.Helper()
	app, err := dps.NewLocal(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

// buildUpper assembles the tutorial uppercase chain with the typed
// builder, returning the compile-time-typed graph.
func buildUpper(t testing.TB, app *dps.App, name string) dps.Graph[*reqTok, *reqTok] {
	t.Helper()
	main := dps.MustCollection[struct{}](app, name+"-main")
	if err := main.Map(app.MasterNode()); err != nil {
		t.Fatal(err)
	}
	work := dps.MustCollection[struct{}](app, name+"-work")
	if err := work.MapRoundRobin(3); err != nil {
		t.Fatal(err)
	}
	split := dps.Split(name+"-split", main, dps.MainRoute(),
		func(c *dps.Ctx, in *reqTok, post func(*chrTok)) {
			for i := 0; i < len(in.Str); i++ {
				post(&chrTok{Chr: in.Str[i], Pos: i})
			}
		})
	upper := dps.Leaf(name+"-upper", work, dps.ByKey[*chrTok]("by-pos", func(in *chrTok) int { return in.Pos }),
		func(c *dps.Ctx, in *chrTok) *chrTok {
			ch := in.Chr
			if ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			return &chrTok{Chr: ch, Pos: in.Pos}
		})
	merge := dps.Merge(name+"-merge", main, dps.MainRoute(),
		func(c *dps.Ctx, first *chrTok, next func() (*chrTok, bool)) *reqTok {
			buf := make([]byte, 0, 64)
			for in, ok := first, true; ok; in, ok = next() {
				for len(buf) <= in.Pos {
					buf = append(buf, 0)
				}
				buf[in.Pos] = in.Chr
			}
			return &reqTok{Str: string(buf)}
		})
	return dps.MustBuild(app, name, dps.Then(dps.Then(dps.Chain(split), upper), merge))
}

func TestTypedChainCall(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b", "c"), dps.WithWindow(8), dps.WithWorkers(2))
	g := buildUpper(t, app, "upper")
	out, err := g.Call(context.Background(), &reqTok{Str: "dynamic parallel schedules"})
	if err != nil {
		t.Fatal(err)
	}
	// out is *reqTok — no assertion needed, the type checker proved it.
	if out.Str != "DYNAMIC PARALLEL SCHEDULES" {
		t.Fatalf("got %q", out.Str)
	}
}

func TestCallAsyncTyped(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"))
	g := buildUpper(t, app, "upper-async")
	p, err := g.CallAsync(context.Background(), &reqTok{Str: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.Str != "ABC" {
		t.Fatalf("got %q", out.Str)
	}
}

func TestFacadeCancellation(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"), dps.WithWindow(2))
	main := dps.MustCollection[struct{}](app, "main")
	if err := main.Map("a"); err != nil {
		t.Fatal(err)
	}
	work := dps.MustCollection[struct{}](app, "work")
	if err := work.Map("b"); err != nil {
		t.Fatal(err)
	}
	var parked atomic.Bool
	parked.Store(true)
	hold := make(chan struct{})
	split := dps.Split("split", main, dps.MainRoute(),
		func(c *dps.Ctx, in *cntTok, post func(*cntTok)) {
			for i := 0; i < in.N; i++ {
				post(&cntTok{N: i})
			}
		})
	leaf := dps.Leaf("work", work, dps.RoundRobin(),
		func(c *dps.Ctx, in *cntTok) *cntTok {
			if parked.Load() {
				<-hold
			}
			return in
		})
	merge := dps.Merge("merge", main, dps.MainRoute(),
		func(c *dps.Ctx, first *cntTok, next func() (*cntTok, bool)) *cntTok {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &cntTok{N: n}
		})
	g := dps.MustBuild(app, "cancelable", dps.Then(dps.Then(dps.Chain(split), leaf), merge))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Call(ctx, &cntTok{N: 16})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled facade call did not return")
	}
	parked.Store(false)
	close(hold)
	out, err := g.Call(context.Background(), &cntTok{N: 4})
	if err != nil {
		t.Fatalf("second call after cancel: %v", err)
	}
	if out.N != 4 {
		t.Fatalf("merged %d, want 4", out.N)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("app failed after cancellation: %v", err)
	}
}

func TestTypedVerification(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"))
	g := buildUpper(t, app, "verify")
	fg, ok := app.Graph("verify")
	if !ok {
		t.Fatal("named graph not registered")
	}
	if fg != g.Flowgraph() {
		t.Fatal("registered graph differs from built graph")
	}
	// Correct typing succeeds.
	if _, err := dps.Typed[*reqTok, *reqTok](fg); err != nil {
		t.Fatalf("Typed with matching types: %v", err)
	}
	// Entry mismatch is caught.
	if _, err := dps.Typed[*cntTok, *reqTok](fg); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("entry mismatch not reported, got %v", err)
	}
	// Exit mismatch is caught.
	if _, err := dps.Typed[*reqTok, *cntTok](fg); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("exit mismatch not reported, got %v", err)
	}
}

func TestNewStageVerification(t *testing.T) {
	app := newApp(t, dps.WithNodes("a"))
	g := buildUpper(t, app, "stage-src")
	tc := dps.MustCollection[struct{}](app, "tc")
	if err := tc.Map("a"); err != nil {
		t.Fatal(err)
	}
	op := g.Flowgraph().EntryOp() // split: *reqTok -> *chrTok
	if _, err := dps.NewStage[*reqTok, *chrTok](op, tc, dps.MainRoute()); err != nil {
		t.Fatalf("matching NewStage: %v", err)
	}
	if _, err := dps.NewStage[*chrTok, *chrTok](op, tc, dps.MainRoute()); err == nil {
		t.Fatal("input mismatch not reported")
	}
	if _, err := dps.NewStage[*reqTok, *reqTok](op, tc, dps.MainRoute()); err == nil {
		t.Fatal("output mismatch not reported")
	}
}

func TestCallStageAcrossApps(t *testing.T) {
	// The paper's Figure 10: one application's graph called as a parallel
	// service from another application's graph.
	service := newApp(t, dps.WithNodes("s0", "s1", "s2"))
	sg := buildUpper(t, service, "svc")

	client := newApp(t, dps.WithNodes("c0"))
	ctc := dps.MustCollection[struct{}](client, "client")
	if err := ctc.Map("c0"); err != nil {
		t.Fatal(err)
	}
	call := dps.CallStage("call-svc", sg, ctc, dps.MainRoute())
	cg := dps.MustBuild(client, "caller", dps.Chain(call))
	out, err := cg.Call(context.Background(), &reqTok{Str: "figure ten"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Str != "FIGURE TEN" {
		t.Fatalf("got %q", out.Str)
	}
}

func TestCollectionState(t *testing.T) {
	type counterState struct{ Hits int }
	app := newApp(t, dps.WithNodes("a"))
	main := dps.MustCollection[struct{}](app, "main")
	if err := main.Map("a"); err != nil {
		t.Fatal(err)
	}
	stateful := dps.MustCollection[counterState](app, "stateful")
	if err := stateful.Map("a"); err != nil {
		t.Fatal(err)
	}
	split := dps.Split("split", main, dps.MainRoute(),
		func(c *dps.Ctx, in *cntTok, post func(*cntTok)) {
			for i := 0; i < in.N; i++ {
				post(&cntTok{N: i})
			}
		})
	hit := dps.Leaf("hit", stateful, dps.MainRoute(),
		func(c *dps.Ctx, in *cntTok) *cntTok {
			st := dps.StateOf[counterState](c)
			st.Hits++
			return &cntTok{N: st.Hits}
		})
	merge := dps.Merge("merge", main, dps.MainRoute(),
		func(c *dps.Ctx, first *cntTok, next func() (*cntTok, bool)) *cntTok {
			max := first.N
			for in, ok := first, true; ok; in, ok = next() {
				if in.N > max {
					max = in.N
				}
			}
			return &cntTok{N: max}
		})
	g := dps.MustBuild(app, "stateful", dps.Then(dps.Then(dps.Chain(split), hit), merge))
	out, err := g.Call(context.Background(), &cntTok{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 5 {
		t.Fatalf("thread state counted %d hits, want 5", out.N)
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := dps.NewLocal(dps.WithNodes()); err == nil {
		t.Fatal("empty WithNodes accepted")
	}
	if _, err := dps.NewLocal(dps.WithWindow(-1)); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := dps.NewLocal(dps.WithWorkers(-2)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := dps.NewLocal(dps.WithQueue(-3)); err == nil {
		t.Fatal("negative queue accepted")
	}
}

func TestOptionsApply(t *testing.T) {
	// Exercise every option on a real call; ForceSerialize round-trips the
	// tokens even on the single local node, so serialization bugs surface.
	app := newApp(t,
		dps.WithNodes("a", "b"),
		dps.WithWorkers(2),
		dps.WithQueue(16),
		dps.WithForceSerialize(true),
		dps.WithFlowPolicy(dps.WindowPolicy(4)),
	)
	g := buildUpper(t, app, "options")
	out, err := g.Call(context.Background(), &reqTok{Str: "options"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Str != "OPTIONS" {
		t.Fatalf("got %q", out.Str)
	}
	if s := app.Stats(); s.TokensPosted == 0 {
		t.Fatal("stats not collected")
	}
}

func TestDefaultNode(t *testing.T) {
	app := newApp(t)
	if got := app.MasterNode(); got != "node0" {
		t.Fatalf("default master node %q", got)
	}
	if names := app.NodeNames(); len(names) != 1 {
		t.Fatalf("default nodes %v", names)
	}
}

// counterState is a migratable thread state used by the live-remap test.
type counterState struct {
	Calls int
}

var _ = dps.Register[counterState]()

// TestLiveRemapThroughFacade drives the placement layer end to end through
// the public API: a stateful collection is remapped between nodes with
// WithRebalance configured, the state travels, and the epoch advances.
func TestLiveRemapThroughFacade(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"), dps.WithRebalance(5*time.Second))
	work := dps.MustCollection[counterState](app, "remap-work")
	if err := work.Map("a"); err != nil {
		t.Fatal(err)
	}
	count := dps.Leaf("remap-count", work, dps.MainRoute(),
		func(c *dps.Ctx, in *cntTok) *cntTok {
			st := dps.StateOf[counterState](c)
			st.Calls++
			return &cntTok{N: st.Calls}
		})
	g, err := dps.Build(app, "remap-graph", dps.Chain(count))
	if err != nil {
		t.Fatal(err)
	}
	if out, err := g.Call(context.Background(), &cntTok{}); err != nil || out.N != 1 {
		t.Fatalf("first call: %v, %v", out, err)
	}
	before := work.Epoch()
	if err := work.Remap(context.Background(), "b"); err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if got, _ := work.NodeOf(0); got != "b" {
		t.Fatalf("thread on %q after remap", got)
	}
	if work.Epoch() <= before {
		t.Fatal("epoch did not advance")
	}
	out, err := g.Call(context.Background(), &cntTok{})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Fatalf("state did not travel: counter = %d, want 2", out.N)
	}
	if s := app.Stats(); s.MigrationsCompleted != 1 {
		t.Fatalf("MigrationsCompleted = %d", s.MigrationsCompleted)
	}
}
