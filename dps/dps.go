// Package dps is the public, supported API of this Dynamic Parallel
// Schedules reproduction (Gerlach & Hersch, HIPS/IPDPS 2003): parallel
// applications built from compositional split–compute–merge flow graphs,
// mapped at runtime onto collections of threads spread across cluster
// nodes.
//
// The package is a thin, allocation-free façade over the engine in
// internal/core. It adds three things the engine's internal surface does
// not have:
//
//   - Typed graphs. Stages carry their token types as type parameters
//     (Stage[In, Out]) and the Chain/Then builder propagates them, so
//     wiring a stage whose input type does not match its predecessor's
//     output type is a compile error — the paper's
//     FlowgraphNode<Operation, Route> coherence made literal. The built
//     Graph[In, Out] is called without type assertions:
//     Call(ctx, in) (Out, error).
//
//   - Context-aware calls. Every call takes a context.Context; canceling
//     it returns promptly with ctx's error, deregisters the pending call,
//     and drains the call's in-flight tokens so an abandoned invocation
//     releases its flow-control window slots instead of wedging the graph.
//
//   - Functional options. NewLocal / NewSim / Connect replace hand-built
//     engine configuration with WithWindow, WithWorkers, WithQueue,
//     WithFlowPolicy, WithForceSerialize, WithRegistry and WithNodes.
//
// A minimal application:
//
//	app, err := dps.NewLocal(dps.WithNodes("nodeA", "nodeB"), dps.WithWindow(16))
//	main := dps.MustCollection[struct{}](app, "main")
//	_ = main.Map("nodeA")
//	work := dps.MustCollection[struct{}](app, "work")
//	_ = work.Map("nodeB*2")
//
//	split := dps.Split("split", main, dps.MainRoute(),
//	    func(c *dps.Ctx, in *Req, post func(*Part)) { ... })
//	comp := dps.Leaf("compute", work, dps.RoundRobin(),
//	    func(c *dps.Ctx, in *Part) *Part { ... })
//	merge := dps.Merge("merge", main, dps.MainRoute(),
//	    func(c *dps.Ctx, first *Part, next func() (*Part, bool)) *Resp { ... })
//
//	g := dps.MustBuild(app, "service", dps.Then(dps.Then(dps.Chain(split), comp), merge))
//	out, err := g.Call(ctx, &Req{...}) // out is *Resp, no assertion
//
// Graphs that are not simple chains (conditional type-routed paths built
// with the engine's Path/Add combinators) and the repo's internal
// application packages remain reachable through App.Core.
package dps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Token is a DPS data object: a pointer to a struct whose exported fields
// are serializable. Register token types with Register before use.
type Token = core.Token

// ErrOverload is wrapped by Call/CallAsync errors when the application's
// in-flight call budget (WithMaxInFlightCalls) is exhausted: the call was
// shed at admission, nothing was posted, and the caller should back off and
// retry. Test with errors.Is.
var ErrOverload = core.ErrOverload

// Ctx is the execution context passed to every operation body.
type Ctx = core.Ctx

// CallResult is the outcome of one flow-graph invocation.
type CallResult = core.CallResult

// Stats are cumulative engine counters of an application or node runtime.
type Stats = core.Stats

// Flowgraph is a validated, executable flow graph. Typed graphs built with
// Build wrap one; untyped graphs constructed by internal application
// packages can be given static call types with Typed.
type Flowgraph = core.Flowgraph

// OpDef is an operation definition (sequential user code plus its
// token-type signature), reusable across stages and graphs.
type OpDef = core.OpDef

// Registry is a token type registry; the process-wide default is used
// unless WithRegistry selects another.
type Registry = serial.Registry

// NewRegistry creates an empty token registry for applications that must
// not share the process-wide default.
func NewRegistry() *Registry { return serial.NewRegistry() }

// Register records T (a struct type) in the process-wide token registry,
// enabling automatic serialization of *T tokens — the paper's IDENTIFY
// macro. It panics on unregistrable types; use it in a package-level var
// block next to the type definition:
//
//	type ReqToken struct{ N int }
//	var _ = dps.Register[ReqToken]()
func Register[T any]() struct{} { return serial.MustRegister[T]() }

// App is a DPS application: a set of cluster-node runtimes plus the thread
// collections and flow graphs defined on them.
type App struct {
	core *core.App
}

// NewLocal creates an application whose nodes communicate through an
// in-process fabric with no modelled cost (the paper's single-host mode).
// Name the virtual nodes with WithNodes; one node "node0" is created
// otherwise.
func NewLocal(opts ...Option) (*App, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	app, err := core.NewLocalApp(cfg.engine, cfg.nodeNames()...)
	if err != nil {
		return nil, err
	}
	return &App{core: app}, nil
}

// NewSim creates an application whose nodes are attached to a simulated
// cluster network; tokens crossing nodes are serialized and pay the
// modelled NIC and latency costs. Name the nodes with WithNodes.
func NewSim(net *simnet.Network, opts ...Option) (*App, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	app, err := core.NewSimApp(cfg.engine, net, cfg.nodeNames()...)
	if err != nil {
		return nil, err
	}
	return &App{core: app}, nil
}

// Connect creates an application attached to an externally managed
// transport — typically a kernel daemon's TCP fabric (cmd/dps-kernel). The
// transport's local name becomes the node name; attach further nodes with
// Attach. WithNodes is rejected: node identity comes from the transport.
func Connect(tr transport.Transport, opts ...Option) (*App, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if len(cfg.nodes) > 0 {
		return nil, fmt.Errorf("dps: Connect derives node names from transports; WithNodes is not applicable")
	}
	app := core.NewApp(cfg.engine)
	if _, err := app.AttachTransport(tr); err != nil {
		app.Close()
		return nil, err
	}
	return &App{core: app}, nil
}

// Attach adds another cluster node to the application through its
// transport.
func (a *App) Attach(tr transport.Transport) error {
	_, err := a.core.AttachTransport(tr)
	return err
}

// Close shuts the application down. Pending calls fail.
func (a *App) Close() { a.core.Close() }

// Err reports the first unrecoverable runtime error, if any.
func (a *App) Err() error { return a.core.Err() }

// NodeNames lists the application's nodes in attachment order.
func (a *App) NodeNames() []string { return a.core.NodeNames() }

// MasterNode returns the first attached node, conventionally hosting main
// threads and graph calls.
func (a *App) MasterNode() string { return a.core.MasterNode() }

// Stats aggregates the engine counters of every node runtime.
func (a *App) Stats() *Stats { return a.core.Stats() }

// PendingCalls reports the graph calls currently admitted and not yet
// settled — the live in-flight population that WithMaxInFlightCalls
// budgets. A drained application reports zero.
func (a *App) PendingCalls() int { return a.core.PendingCalls() }

// FailNode declares a cluster node dead and synchronously recovers its
// threads onto the surviving nodes (see WithCheckpoint): placements flip,
// the newest committed checkpoints restore on survivors, retained
// in-flight tokens replay, and duplicate deliveries are suppressed, so
// executing calls complete with exactly-once semantics. It is the entry
// point for external failure detectors — kernel heartbeats, deployment
// tooling — and for fault injection in tests; the engine's own detectors
// (transport send errors, WithFailureDetect probes) converge on the same
// recovery. Fault tolerance must be enabled, and the master node cannot
// be failed.
func (a *App) FailNode(node string) error { return a.core.FailNode(node) }

// Graph returns a registered flow graph by name (the paper's named graphs,
// reusable as parallel services by other applications). Give it static
// call types with Typed.
func (a *App) Graph(name string) (*Flowgraph, bool) { return a.core.Graph(name) }

// Collection returns a registered thread collection by name.
func (a *App) Collection(name string) (*Collection, bool) { return a.core.Collection(name) }

// Core exposes the underlying engine application. It exists for the repo's
// internal application packages (parlife, parlin, stripefs, ringbench,
// bench), which predate this façade and take a *core.App, and for graph
// shapes the typed builder cannot express; new code should not need it.
func (a *App) Core() *core.App { return a.core }
