package dps

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Pipe is a typed linear chain of stages under construction: tokens of
// type In enter the first stage and tokens of type Out leave the last one.
// Start a chain with Chain, extend it with Then, and validate/register it
// with Build. Intermediate token types are checked where stages meet, at
// compile time.
type Pipe[In, Out Token] struct {
	nodes []*core.GraphNode
}

// Chain starts a typed chain with its first stage.
func Chain[In, Out Token](first Stage[In, Out]) Pipe[In, Out] {
	return Pipe[In, Out]{nodes: []*core.GraphNode{first.node}}
}

// Then appends a stage to a chain. The stage's input type must equal the
// chain's current output type — a mismatch is a compile error, the
// paper's "coherence of the parametrized types [...] checked during
// compilation".
func Then[In, Mid, Out Token](p Pipe[In, Mid], next Stage[Mid, Out]) Pipe[In, Out] {
	nodes := make([]*core.GraphNode, 0, len(p.nodes)+1)
	nodes = append(nodes, p.nodes...)
	nodes = append(nodes, next.node)
	return Pipe[In, Out]{nodes: nodes}
}

// Graph is a validated, executable flow graph whose entry and exit token
// types are statically known: Call takes an In and returns an Out with no
// runtime assertions on the caller's side.
type Graph[In, Out Token] struct {
	fg *core.Flowgraph
}

// Build validates the chain (structure and runtime invariants — the typed
// builder has already pinned the token types) and registers it on the
// application under the given name, making it callable and exposable as a
// named parallel service.
func Build[In, Out Token](app *App, name string, p Pipe[In, Out]) (Graph[In, Out], error) {
	if len(p.nodes) == 0 {
		return Graph[In, Out]{}, fmt.Errorf("dps: graph %q: empty chain", name)
	}
	fg, err := app.core.NewFlowgraph(name, core.Path(p.nodes...))
	if err != nil {
		return Graph[In, Out]{}, err
	}
	return Graph[In, Out]{fg: fg}, nil
}

// MustBuild is Build panicking on error, for example setup code.
func MustBuild[In, Out Token](app *App, name string, p Pipe[In, Out]) Graph[In, Out] {
	g, err := Build(app, name, p)
	if err != nil {
		panic(err)
	}
	return g
}

// Typed gives static call types to a flow graph built outside the typed
// builder (an engine graph from an internal application package, or a
// named graph looked up with App.Graph). It verifies that the graph's
// entry accepts In and that its exit emits only Out.
func Typed[In, Out Token](fg *Flowgraph) (Graph[In, Out], error) {
	if fg == nil {
		return Graph[In, Out]{}, fmt.Errorf("dps: Typed of a nil graph")
	}
	if err := verifyCallTypes[In, Out](
		fg.EntryOp().InTypes(), fmt.Sprintf("graph %q entry %q", fg.Name(), fg.EntryOp().Name()),
		fg.ExitOp().OutTypes(), fmt.Sprintf("graph %q exit %q", fg.Name(), fg.ExitOp().Name()),
	); err != nil {
		return Graph[In, Out]{}, err
	}
	return Graph[In, Out]{fg: fg}, nil
}

// MustTyped is Typed panicking on error.
func MustTyped[In, Out Token](fg *Flowgraph) Graph[In, Out] {
	g, err := Typed[In, Out](fg)
	if err != nil {
		panic(err)
	}
	return g
}

// Call executes the graph on one input token from the application's master
// node and waits for the single output token. Multiple concurrent calls
// pipeline through the graph. Canceling ctx abandons the call promptly:
// Call returns ctx's error and the engine drains the call's in-flight
// tokens, releasing their flow-control window slots.
func (g Graph[In, Out]) Call(ctx context.Context, in In) (Out, error) {
	return g.CallFrom(ctx, g.fg.App().MasterNode(), in)
}

// CallFrom is Call with an explicit origin node; the result token is
// routed back to that node.
func (g Graph[In, Out]) CallFrom(ctx context.Context, origin string, in In) (Out, error) {
	out, err := g.fg.CallFrom(ctx, origin, in)
	if err != nil {
		var zero Out
		return zero, err
	}
	return out.(Out), nil
}

// CallAsync starts a call from the master node and returns a Pending
// handle for its typed result.
func (g Graph[In, Out]) CallAsync(ctx context.Context, in In) (Pending[Out], error) {
	return g.CallAsyncFrom(ctx, g.fg.App().MasterNode(), in)
}

// CallAsyncFrom starts a call from the given origin node.
func (g Graph[In, Out]) CallAsyncFrom(ctx context.Context, origin string, in In) (Pending[Out], error) {
	ch, err := g.fg.CallAsyncFrom(ctx, origin, in)
	if err != nil {
		return Pending[Out]{}, err
	}
	return Pending[Out]{ch: ch}, nil
}

// Flowgraph returns the underlying engine graph, e.g. to expose it to an
// untyped consumer or a service registry.
func (g Graph[In, Out]) Flowgraph() *Flowgraph { return g.fg }

// Name returns the graph's registered name.
func (g Graph[In, Out]) Name() string { return g.fg.Name() }

// DOT renders the graph in Graphviz format.
func (g Graph[In, Out]) DOT() string { return g.fg.DOT() }

// Pending is the typed handle of one asynchronous graph call.
type Pending[Out Token] struct {
	ch <-chan core.CallResult
}

// Wait blocks for the call's outcome. It must be consumed at most once;
// the result arrives exactly once on the underlying channel.
func (p Pending[Out]) Wait() (Out, error) {
	res := <-p.ch
	if res.Err != nil {
		var zero Out
		return zero, res.Err
	}
	return res.Value.(Out), nil
}

// Chan exposes the untyped result channel, for select loops.
func (p Pending[Out]) Chan() <-chan CallResult { return p.ch }
