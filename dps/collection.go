package dps

import "repro/internal/core"

// Collection is a named group of DPS threads. Each thread carries a
// private instance of the collection's state type and is placed on a
// cluster node with Map / MapNodes / MapRoundRobin (the paper's dynamic
// mapping strings, e.g. "nodeA*2 nodeB").
//
// While flow graphs execute, the placement may only change through the
// live-remap protocol: Remap(ctx, spec) / RemapThread(ctx, i, node)
// quiesce each moving thread, ship its state (which must be a registered,
// fully exported struct type — or empty) to the new node, and forward
// in-flight tokens so calls keep running with per-thread FIFO order
// preserved. Epoch reports the placement version. WithRebalance bounds the
// per-thread quiesce wait.
type Collection = core.ThreadCollection

// NewCollection creates a thread collection whose threads each own a
// zero-initialized *S, retrieved inside operations with StateOf. Use
// struct{} for stateless collections.
func NewCollection[S any](app *App, name string) (*Collection, error) {
	return core.NewCollection[S](app.core, name)
}

// MustCollection is NewCollection panicking on error, for example setup
// code.
func MustCollection[S any](app *App, name string) *Collection {
	return core.MustCollection[S](app.core, name)
}

// StateOf returns the current thread's private state as *S. It panics if
// the thread's collection was not declared with state type S, surfacing
// wiring mistakes immediately.
func StateOf[S any](c *Ctx) *S { return core.StateOf[S](c) }

// ParseMapping parses the paper's thread-mapping string syntax
// ("nodeA*2 nodeB nodeC*3") into an explicit per-thread node list.
func ParseMapping(spec string) ([]string, error) { return core.ParseMapping(spec) }
