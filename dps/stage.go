package dps

import (
	"fmt"
	"reflect"

	"repro/internal/core"
)

// Stage is one node of a typed flow graph under construction: an operation
// bound to the thread collection executing it and the routing function
// selecting the thread instance — the paper's
// FlowgraphNode<Operation, Route>(threadCollection), with the operation's
// token types carried in the type parameters so chains are checked at
// compile time.
//
// Like the engine's graph nodes, a Stage value belongs to at most one
// graph; construct a fresh Stage per graph (operations themselves are
// reusable).
type Stage[In, Out Token] struct {
	node *core.GraphNode
}

// Leaf builds a stage around a 1→1 operation: it receives one token and
// returns exactly one output token. In and Out must be pointer-to-struct
// token types.
func Leaf[In, Out Token](name string, on *Collection, via *Route, fn func(c *Ctx, in In) Out) Stage[In, Out] {
	return Stage[In, Out]{node: core.NewNode(core.Leaf[In, Out](name, fn), on, via)}
}

// Split builds a stage around a 1→N operation. The function must call post
// at least once; each posted token joins the new group tracked by the
// engine, so the paired merge knows when the group is complete without the
// programmer counting tokens.
func Split[In, Out Token](name string, on *Collection, via *Route, fn func(c *Ctx, in In, post func(Out))) Stage[In, Out] {
	return Stage[In, Out]{node: core.NewNode(core.Split[In, Out](name, fn), on, via)}
}

// Merge builds a stage around an N→1 operation. The function receives the
// first token of a group and a next function yielding the remaining ones;
// next reports false once every token of the group has been consumed. The
// return value is the single output token.
func Merge[In, Out Token](name string, on *Collection, via *Route, fn func(c *Ctx, first In, next func() (In, bool)) Out) Stage[In, Out] {
	return Stage[In, Out]{node: core.NewNode(core.Merge[In, Out](name, fn), on, via)}
}

// Stream builds a stage around an N→M operation: it collects a group like
// a merge but may post output tokens at any point, enabling pipelining
// between successive parallel constructs (the paper's stream operations).
// It must post at least one token per group.
func Stream[In, Out Token](name string, on *Collection, via *Route, fn func(c *Ctx, first In, next func() (In, bool), post func(Out))) Stage[In, Out] {
	return Stage[In, Out]{node: core.NewNode(core.Stream[In, Out](name, fn), on, via)}
}

// CallStage builds a stage that invokes another typed graph as a single
// 1→1 node — the paper's inter-application parallel service call
// (Figure 10). The target may belong to another application; pipelining
// and token queueing are preserved across the call, and canceling the
// outer call cancels the nested one.
func CallStage[In, Out Token](name string, target Graph[In, Out], on *Collection, via *Route) Stage[In, Out] {
	return Stage[In, Out]{node: core.NewNode(core.GraphCallOp(name, target.fg), on, via)}
}

// NewStage types a prebuilt operation definition, for operations
// constructed outside this package (e.g. by internal application
// packages). It verifies at construction time that the operation accepts
// In and emits only Out, so the typed chain cannot lie about an untyped
// operation.
func NewStage[In, Out Token](op *OpDef, on *Collection, via *Route) (Stage[In, Out], error) {
	subject := fmt.Sprintf("operation %q", op.Name())
	if err := verifyCallTypes[In, Out](op.InTypes(), subject, op.OutTypes(), subject); err != nil {
		return Stage[In, Out]{}, err
	}
	return Stage[In, Out]{node: core.NewNode(op, on, via)}, nil
}

// verifyCallTypes is the shared runtime check behind NewStage and Typed:
// the accepting side must take In, and every type the emitting side may
// produce must be Out. acceptsBy and emitsBy name the checked entities in
// diagnostics.
func verifyCallTypes[In, Out Token](accepts []reflect.Type, acceptsBy string, emits []reflect.Type, emitsBy string) error {
	inT, err := structType[In]()
	if err != nil {
		return fmt.Errorf("dps: %s: %w", acceptsBy, err)
	}
	outT, err := structType[Out]()
	if err != nil {
		return fmt.Errorf("dps: %s: %w", emitsBy, err)
	}
	if !typeIn(accepts, inT) {
		return fmt.Errorf("dps: %s does not accept %s (accepts %v)", acceptsBy, inT, accepts)
	}
	for _, t := range emits {
		if t != outT {
			return fmt.Errorf("dps: %s may emit %s, not covered by %s", emitsBy, t, outT)
		}
	}
	return nil
}

// structType resolves a token type parameter to its underlying struct
// type.
func structType[T Token]() (reflect.Type, error) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("token type %s is not a pointer to struct", t)
	}
	return t.Elem(), nil
}

func typeIn(ts []reflect.Type, want reflect.Type) bool {
	for _, t := range ts {
		if t == want {
			return true
		}
	}
	return false
}
