package dps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/core/flowctl"
)

// FlowPolicy selects the flow-control discipline applied to each split
// group; see WindowPolicy and UnboundedPolicy.
type FlowPolicy = flowctl.Policy

// WindowPolicy is the paper's credit-window flow control: at most n tokens
// of one split–merge group unacknowledged at any time. n <= 0 selects the
// engine default.
func WindowPolicy(n int) FlowPolicy { return flowctl.Window{N: n} }

// UnboundedPolicy applies no backpressure: posts never block. Useful as a
// baseline and for workloads whose group sizes are intrinsically bounded.
func UnboundedPolicy() FlowPolicy { return flowctl.Unbounded{} }

// DeadlinePolicy is WindowPolicy with deadline-aware granting: when the
// window is exhausted, queued posters are granted slots in
// earliest-deadline-first order instead of wake-up order, so a saturated
// graph spends its window on the calls closest to expiry and the p99 of
// admitted calls stays bounded. Posters whose context carries no deadline
// age with a virtual deadline of arrival + patience (<= 0 selects the
// engine default) so urgent traffic cannot starve them. n <= 0 selects the
// engine's default window.
func DeadlinePolicy(n int, patience time.Duration) FlowPolicy {
	return flowctl.Deadline{N: n, Patience: patience}
}

// Option configures an application at construction time.
type Option func(*config) error

type config struct {
	nodes  []string
	engine core.Config
}

func buildConfig(opts []Option) (*config, error) {
	cfg := &config{}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.engine.FailureDetect > 0 && cfg.engine.Checkpoint == 0 {
		return nil, fmt.Errorf("dps: WithFailureDetect requires WithCheckpoint (probing without the recovery layer would be inert)")
	}
	if cfg.engine.SuspectGrace > 0 && cfg.engine.Checkpoint == 0 {
		return nil, fmt.Errorf("dps: WithSuspectGrace requires WithCheckpoint (there is no failure detector to grace without the recovery layer)")
	}
	if cfg.engine.Compress && !cfg.engine.Batch {
		return nil, fmt.Errorf("dps: WithCompression requires WithBatch (only batch frame bodies are compressed)")
	}
	return cfg, nil
}

func (c *config) nodeNames() []string {
	if len(c.nodes) == 0 {
		return []string{"node0"}
	}
	return c.nodes
}

// WithNodes names the application's virtual cluster nodes, in attachment
// order (the first named node is the master node).
func WithNodes(names ...string) Option {
	return func(c *config) error {
		if len(names) == 0 {
			return fmt.Errorf("dps: WithNodes needs at least one node name")
		}
		c.nodes = append([]string(nil), names...)
		return nil
	}
}

// WithWindow bounds the number of tokens in circulation per split–merge
// pair (the paper's flow-control feedback). Zero keeps the engine default;
// it is ignored when WithFlowPolicy selects a policy explicitly.
func WithWindow(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dps: negative flow-control window %d", n)
		}
		c.engine.Window = n
		return nil
	}
}

// WithFlowPolicy selects the flow-control discipline applied to each split
// group, overriding WithWindow.
func WithFlowPolicy(p FlowPolicy) Option {
	return func(c *config) error {
		c.engine.FlowPolicy = p
		return nil
	}
}

// WithWorkers sets the number of scheduler worker lanes per node. Values
// above one shard the node's thread instances over that many drainer
// goroutines (bounded intra-node concurrency); zero or one keeps the
// default on-demand drainer per instance.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dps: negative worker count %d", n)
		}
		c.engine.Workers = n
		return nil
	}
}

// WithQueue bounds each thread instance's dispatch queue; zero keeps the
// engine default. Beyond the bound, dispatch degrades to one goroutine per
// token instead of blocking the poster.
func WithQueue(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dps: negative queue bound %d", n)
		}
		c.engine.Queue = n
		return nil
	}
}

// WithCallShards sets the number of lock shards in the pending-call
// registry; zero keeps the engine default, values are rounded up to a power
// of two. One shard reproduces the historical single-mutex table — useful
// only for measurement.
func WithCallShards(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dps: negative call shard count %d", n)
		}
		c.engine.CallShards = n
		return nil
	}
}

// WithMaxInFlightCalls bounds the graph calls admitted concurrently across
// the application. Beyond the budget, Call/CallAsync shed at admission with
// an error wrapping ErrOverload instead of queueing without bound — the
// caller backs off and retries. Zero admits without bound.
func WithMaxInFlightCalls(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dps: negative in-flight call budget %d", n)
		}
		c.engine.MaxInFlightCalls = n
		return nil
	}
}

// WithRebalance bounds the quiesce phase of live thread migrations
// (Collection.Remap / RemapThread) when the caller's context carries no
// deadline: a thread stuck inside an operation or an open merge group longer
// than drain aborts the migration cleanly (placement unchanged, held tokens
// re-dispatched) instead of stalling the remap forever. Zero waits
// indefinitely.
func WithRebalance(drain time.Duration) Option {
	return func(c *config) error {
		if drain < 0 {
			return fmt.Errorf("dps: negative rebalance drain %v", drain)
		}
		c.engine.RemapDrain = drain
		return nil
	}
}

// WithCheckpoint enables the fault-tolerance layer and sets the interval
// at which thread instances checkpoint their state. With it on, every
// token is sequenced and retained by its sender until a checkpoint of its
// destination makes it durable; a node declared dead (FailNode, transport
// send errors, WithFailureDetect probes, kernel heartbeats) has its
// threads restored from their newest checkpoints on the surviving nodes,
// retained in-flight tokens are replayed, and receivers drop re-delivered
// duplicates — executing calls complete with exactly-once semantics.
//
// Checkpointable state follows the live-migration rule: stateless, or a
// registered fully-exported struct. Operations must be deterministic
// functions of (state, input) for re-execution to converge, and collector
// stages (merges, streams) should be placed on the master node, whose
// death is unrecoverable (it hosts calls, the checkpoint store and the
// recovery coordinator). Zero disables the layer entirely — the token hot
// paths and wire formats are then untouched.
func WithCheckpoint(interval time.Duration) Option {
	return func(c *config) error {
		if interval < 0 {
			return fmt.Errorf("dps: negative checkpoint interval %v", interval)
		}
		c.engine.Checkpoint = interval
		return nil
	}
}

// WithFailureDetect adds active liveness probing to the fault-tolerance
// layer: the master node probes every peer at this interval and a failing
// probe declares the peer suspect, triggering automatic failover. Without
// it, detection is passive (transport send errors of real traffic) or
// external (kernel heartbeats calling FailNode). Requires WithCheckpoint.
func WithFailureDetect(interval time.Duration) Option {
	return func(c *config) error {
		if interval < 0 {
			return fmt.Errorf("dps: negative failure-detect interval %v", interval)
		}
		c.engine.FailureDetect = interval
		return nil
	}
}

// WithSuspectGrace sets the detector's suspect→confirm grace window: a
// failing transport send (real traffic and WithFailureDetect probes alike)
// is retried with capped exponential backoff and jitter for up to this
// window before the destination may be declared dead. Transient faults — a
// peer process restarting, a refused dial, a partition that heals — are
// absorbed by the retries and never trigger a failover; a real crash
// exhausts the window and recovers as usual, delayed by at most the grace.
// Requires WithCheckpoint (without the recovery layer there is no detector
// to grace). Zero keeps the immediate-suspect behaviour.
func WithSuspectGrace(window time.Duration) Option {
	return func(c *config) error {
		if window < 0 {
			return fmt.Errorf("dps: negative suspect grace %v", window)
		}
		c.engine.SuspectGrace = window
		return nil
	}
}

// WithBatch turns on per-destination token coalescing on the wire path:
// outbound tokens and group-ends bound for the same node accumulate into
// one batch frame, flushed when it fills (maxBytes payload bytes or
// maxTokens entries), when delay elapses, or immediately when a
// latency-sensitive message (call result, ack, fence, checkpoint) needs the
// lane. With fault tolerance on, per-token sequence stamps fold into one
// batch header, collapsing the per-token framing overhead of bulk streams.
// Zero values select the engine defaults. Off by default: without this
// option every wire frame is byte-identical to the unbatched engine.
func WithBatch(maxBytes, maxTokens int, delay time.Duration) Option {
	return func(c *config) error {
		if maxBytes < 0 || maxTokens < 0 || delay < 0 {
			return fmt.Errorf("dps: negative batch bound (%d bytes, %d tokens, %v)", maxBytes, maxTokens, delay)
		}
		c.engine.Batch = true
		c.engine.BatchMaxBytes = maxBytes
		c.engine.BatchMaxTokens = maxTokens
		c.engine.BatchDelay = delay
		return nil
	}
}

// WithCompression DEFLATE-compresses batch frame bodies that shrink
// (incompressible payloads ride raw). Requires WithBatch — unbatched frames
// are never compressed by the engine; for transport-level compression of
// every TCP frame see the tcptransport.WithCompression option instead.
func WithCompression() Option {
	return func(c *config) error {
		c.engine.Compress = true
		return nil
	}
}

// WithTraceSampling enables per-token distributed tracing for the given
// fraction of graph calls (0 traces nothing, 1 traces every call). A
// sampled call's trace ID (its call ID) rides its envelopes across splits,
// merges, node boundaries, migrations and failover replays; each node
// buffers the spans it observes (App.TraceSpans assembles the timeline).
// Unsampled calls pay one predicted branch per potential span site and
// allocate nothing; with rate zero the wire format is byte-identical to an
// untraced engine.
func WithTraceSampling(rate float64) Option {
	return func(c *config) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("dps: trace sampling rate %v outside [0, 1]", rate)
		}
		c.engine.TraceSample = rate
		return nil
	}
}

// WithForceSerialize marshals and unmarshals tokens even for same-node
// transfers, exercising the full networking path inside one process — the
// paper's several-kernels-per-host debugging mode.
func WithForceSerialize(on bool) Option {
	return func(c *config) error {
		c.engine.ForceSerialize = on
		return nil
	}
}

// WithRegistry selects the token type registry; the process-wide default
// registry is used otherwise.
func WithRegistry(r *Registry) Option {
	return func(c *config) error {
		c.engine.Registry = r
		return nil
	}
}
