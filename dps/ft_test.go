package dps_test

import (
	"context"
	"testing"
	"time"

	"repro/dps"
)

type ftCount struct {
	Seen int
}

var _ = dps.Register[ftCount]()

// TestWithCheckpointFailNode exercises the fault-tolerance façade end to
// end on an in-process fabric: WithCheckpoint enables the layer, FailNode
// recovers a node's stateful threads onto the survivors, OnRecover
// observes the move, and a post-failover call runs against the restored
// state with exactly-once semantics.
func TestWithCheckpointFailNode(t *testing.T) {
	app := newApp(t,
		dps.WithNodes("a", "b"),
		dps.WithCheckpoint(5*time.Millisecond),
		dps.WithWindow(4),
	)
	main := dps.MustCollection[struct{}](app, "ftf-main")
	if err := main.Map("a"); err != nil {
		t.Fatal(err)
	}
	work := dps.MustCollection[ftCount](app, "ftf-work")
	if err := work.Map("b"); err != nil {
		t.Fatal(err)
	}
	split := dps.Split("ftf-split", main, dps.MainRoute(),
		func(c *dps.Ctx, in *cntTok, post func(*cntTok)) {
			for i := 0; i < in.N; i++ {
				post(&cntTok{N: i})
			}
		})
	leaf := dps.Leaf("ftf-leaf", work, dps.RoundRobin(),
		func(c *dps.Ctx, in *cntTok) *cntTok {
			st := dps.StateOf[ftCount](c)
			st.Seen++
			return &cntTok{N: st.Seen}
		})
	merge := dps.Merge("ftf-merge", main, dps.MainRoute(),
		func(c *dps.Ctx, first *cntTok, next func() (*cntTok, bool)) *cntTok {
			max := first.N
			for in, ok := first, true; ok; in, ok = next() {
				if in.N > max {
					max = in.N
				}
			}
			return &cntTok{N: max}
		})
	g, err := dps.Build(app, "ftf", dps.Then(dps.Then(dps.Chain(split), leaf), merge))
	if err != nil {
		t.Fatal(err)
	}

	out, err := g.Call(context.Background(), &cntTok{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 10 {
		t.Fatalf("first call saw max %d, want 10", out.N)
	}

	moved := make(chan string, 1)
	work.OnRecover(func(thread int, from, to string) { moved <- from + "->" + to })
	if err := app.FailNode("b"); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	select {
	case mv := <-moved:
		if mv != "b->a" {
			t.Fatalf("OnRecover saw %q, want b->a", mv)
		}
	default:
		t.Fatal("OnRecover did not fire")
	}

	// The restored state continues the exactly-once counter: the second
	// call's max must be 20, not 10 (state lost) or >20 (re-applied).
	out, err = g.Call(context.Background(), &cntTok{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 20 {
		t.Fatalf("post-failover call saw max %d, want 20 (checkpointed state continued)", out.N)
	}
	if s := app.Stats(); s.FailoversCompleted != 1 {
		t.Fatalf("FailoversCompleted = %d", s.FailoversCompleted)
	}
	if err := app.FailNode("a"); err == nil {
		t.Fatal("failing the master must be rejected")
	}
}

func TestFTOptionErrors(t *testing.T) {
	if _, err := dps.NewLocal(dps.WithCheckpoint(-time.Second)); err == nil {
		t.Fatal("negative checkpoint interval accepted")
	}
	if _, err := dps.NewLocal(dps.WithFailureDetect(-time.Second)); err == nil {
		t.Fatal("negative failure-detect interval accepted")
	}
	if _, err := dps.NewLocal(dps.WithFailureDetect(time.Second)); err == nil {
		t.Fatal("WithFailureDetect without WithCheckpoint accepted (probing would be inert)")
	}
	if _, err := dps.NewLocal(dps.WithSuspectGrace(-time.Second)); err == nil {
		t.Fatal("negative suspect grace accepted")
	}
	if _, err := dps.NewLocal(dps.WithSuspectGrace(time.Second)); err == nil {
		t.Fatal("WithSuspectGrace without WithCheckpoint accepted (there is no detector to grace)")
	}
	app := newApp(t, dps.WithNodes("a", "b"))
	if err := app.FailNode("b"); err == nil {
		t.Fatal("FailNode without WithCheckpoint accepted")
	}
}

// TestWithSuspectGraceAccepted: the full option set composes — grace with
// checkpointing builds and runs a trivial call.
func TestWithSuspectGraceAccepted(t *testing.T) {
	app := newApp(t,
		dps.WithNodes("a", "b"),
		dps.WithCheckpoint(5*time.Millisecond),
		dps.WithSuspectGrace(100*time.Millisecond),
	)
	_ = app
}
