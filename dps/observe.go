package dps

import (
	"encoding/json"
	"net/http"
	"runtime"

	"repro/internal/trace"
	"repro/internal/trace/promtext"
)

// Span is one recorded interval of a sampled call's execution: a post, a
// queue wait, an operation body, a flow-control stall, a wire transfer, a
// relay forward, a failover replay or the result delivery. Spans of one
// call share its trace ID (the call ID) and carry the recording node, so a
// timeline assembled from every node reconstructs the token journey.
type Span = trace.Span

// Hist is a fixed-footprint latency histogram (see App.CallLatency).
type Hist = trace.Hist

// TraceSpans returns the spans of one sampled call (its trace ID is the
// call ID) buffered across the application's nodes, ordered into a
// timeline. Zero selects every buffered trace. Sampling is enabled with
// WithTraceSampling; with it off the result is always empty.
func (a *App) TraceSpans(id uint64) []Span { return a.core.TraceSpans(id) }

// TraceDump renders the timeline of TraceSpans(id) as indented JSON — the
// same shape dps-kernel -trace-dump prints for multi-process deployments.
func (a *App) TraceDump(id uint64) ([]byte, error) {
	return json.MarshalIndent(a.core.TraceSpans(id), "", "  ")
}

// CallLatency returns the merged call-latency histogram: wall time from
// admission to result delivery of every completed call. Always recorded,
// sampled or not.
func (a *App) CallLatency() *Hist { return a.core.CallLatency() }

// QueueWait returns the merged dispatch-queue wait histogram of sampled
// executions; empty unless WithTraceSampling is set.
func (a *App) QueueWait() *Hist { return a.core.QueueWait() }

// QueueDepth reports the tokens currently sitting in the application's
// dispatch queues — a live saturation gauge.
func (a *App) QueueDepth() int64 { return a.core.QueueDepth() }

// statGauges names the Stats fields that are instantaneous or high-water
// observations rather than monotonic counters.
var statGauges = map[string]bool{
	"QueueHighWater": true,
	"TokensPerFrame": true,
}

// MetricsHandler returns an http.Handler serving the application's state in
// the Prometheus text exposition format: every Stats counter (prefixed
// dps_), the live pending-call and queue-depth gauges, the process
// goroutine count, and the call-latency and queue-wait histograms. Mount it
// wherever the process serves debug HTTP:
//
//	http.Handle("/metrics", app.MetricsHandler())
func (a *App) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := &promtext.Encoder{}
		enc.Struct("dps", a.Stats(), statGauges)
		enc.Gauge("dps_pending_calls", "Graph calls admitted and not yet settled.", float64(a.PendingCalls()))
		enc.Gauge("dps_queue_depth", "Tokens sitting in dispatch queues right now.", float64(a.QueueDepth()))
		enc.Gauge("dps_goroutines", "Goroutines in this process.", float64(runtime.NumGoroutine()))
		enc.Histogram("dps_call_latency_seconds", "Call wall time, admission to result delivery.", a.CallLatency())
		enc.Histogram("dps_queue_wait_seconds", "Dispatch-queue wait of sampled executions.", a.QueueWait())
		w.Header().Set("Content-Type", promtext.ContentType)
		w.Write(enc.Bytes())
	})
}
