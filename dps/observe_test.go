package dps_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/dps"
	"repro/internal/trace/promtext"
)

// scrape runs one request against the app's metrics handler and parses the
// exposition into samples (name plus label set -> value) and bare metric
// names. Parsing, not string-matching: the assertions survive formatting
// changes as long as the output stays valid Prometheus text.
func scrape(t *testing.T, app *dps.App) (samples map[string]float64, names map[string]bool) {
	t.Helper()
	rec := httptest.NewRecorder()
	app.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != promtext.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promtext.ContentType)
	}
	samples = make(map[string]float64)
	names = make(map[string]bool)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key := line[:sp]
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = val
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		names[name] = true
	}
	return samples, names
}

// TestMetricsScrapeComplete drives real traffic through an app and asserts
// the live scrape carries every engine counter: the test reflects over the
// Stats struct, so adding a field without it appearing in /metrics fails
// here before it fails in a dashboard.
func TestMetricsScrapeComplete(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"), dps.WithTraceSampling(1))
	g := buildUpper(t, app, "metrics")
	for i := 0; i < 4; i++ {
		if _, err := g.Call(context.Background(), &reqTok{Str: "observe me"}); err != nil {
			t.Fatal(err)
		}
	}

	samples, names := scrape(t, app)

	st := reflect.TypeOf(dps.Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Int64 || !f.IsExported() {
			continue
		}
		metric := "dps_" + promtext.SnakeCase(f.Name)
		if !names[metric] {
			t.Errorf("Stats field %s missing from scrape as %s", f.Name, metric)
		}
	}
	if samples["dps_tokens_posted"] == 0 {
		t.Error("dps_tokens_posted is zero after real calls")
	}
	if samples["dps_calls_completed"] < 4 {
		t.Errorf("dps_calls_completed = %v, want >= 4", samples["dps_calls_completed"])
	}
	for _, gauge := range []string{"dps_pending_calls", "dps_queue_depth", "dps_goroutines"} {
		if !names[gauge] {
			t.Errorf("live gauge %s missing from scrape", gauge)
		}
	}
	if samples["dps_goroutines"] <= 0 {
		t.Error("dps_goroutines not positive")
	}
	for _, hist := range []string{"dps_call_latency_seconds", "dps_queue_wait_seconds"} {
		for _, suffix := range []string{"_count", "_sum"} {
			if !names[hist+suffix] {
				t.Errorf("histogram series %s%s missing from scrape", hist, suffix)
			}
		}
		if !names[hist+"_bucket"] {
			t.Errorf("histogram %s has no buckets", hist)
		}
	}
	if samples["dps_call_latency_seconds_count"] < 4 {
		t.Errorf("call latency histogram recorded %v calls, want >= 4",
			samples["dps_call_latency_seconds_count"])
	}
}

// TestTraceDumpRoundTrips: a sampled call's TraceDump is valid JSON that
// unmarshals back into the same spans TraceSpans returned.
func TestTraceDumpRoundTrips(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"), dps.WithTraceSampling(1))
	g := buildUpper(t, app, "dump")
	if _, err := g.Call(context.Background(), &reqTok{Str: "dump me"}); err != nil {
		t.Fatal(err)
	}
	all := app.TraceSpans(0)
	if len(all) == 0 {
		t.Fatal("sampled call recorded no spans")
	}
	id := all[0].Trace
	data, err := app.TraceDump(id)
	if err != nil {
		t.Fatal(err)
	}
	var spans []dps.Span
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("dump carries no spans")
	}
	for _, s := range spans {
		if s.Trace != id {
			t.Fatalf("dump mixes traces: %+v", s)
		}
	}
}

// TestTracingOffByDefault: without WithTraceSampling no spans are buffered.
func TestTracingOffByDefault(t *testing.T) {
	app := newApp(t, dps.WithNodes("a", "b"))
	g := buildUpper(t, app, "notrace")
	if _, err := g.Call(context.Background(), &reqTok{Str: "quiet"}); err != nil {
		t.Fatal(err)
	}
	if spans := app.TraceSpans(0); len(spans) != 0 {
		t.Fatalf("tracing off recorded %d spans", len(spans))
	}
}

// TestWithTraceSamplingValidation rejects rates outside [0, 1].
func TestWithTraceSamplingValidation(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.1} {
		if _, err := dps.NewLocal(dps.WithTraceSampling(rate)); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}
