// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation via testing.B — one benchmark per table/figure, plus
// finer-grained single-configuration benchmarks for profiling.
//
//	go test -bench=. -benchmem
//
// The Figure/Table benchmarks run the full Quick-mode experiment once per
// b.N iteration and print the regenerated table under -v; the harness in
// cmd/dps-bench produces the paper-scale versions for EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/dps"
	"repro/internal/bench"
	"repro/internal/life"
	"repro/internal/matrix"
	"repro/internal/parlife"
	"repro/internal/parlin"
	"repro/internal/ringbench"
	"repro/internal/simnet"
)

func runReport(b *testing.B, f func(bench.Options) (*bench.Report, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := f(bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkFigure6Ring regenerates Figure 6 (ring throughput, DPS vs raw).
func BenchmarkFigure6Ring(b *testing.B) { runReport(b, bench.Figure6) }

// BenchmarkTable1MatmulOverlap regenerates Table 1 (overlap reductions).
func BenchmarkTable1MatmulOverlap(b *testing.B) { runReport(b, bench.Table1) }

// BenchmarkFigure9LifeSpeedup regenerates Figure 9 (life speedup curves).
func BenchmarkFigure9LifeSpeedup(b *testing.B) { runReport(b, bench.Figure9) }

// BenchmarkTable2GraphCalls regenerates Table 2 (service-call overhead).
func BenchmarkTable2GraphCalls(b *testing.B) { runReport(b, bench.Table2) }

// BenchmarkFigure15LUSpeedup regenerates Figure 15 (LU pipelined vs not).
func BenchmarkFigure15LUSpeedup(b *testing.B) { runReport(b, bench.Figure15) }

// --- single-configuration benchmarks for profiling ----------------------

// BenchmarkFigure6RingDPS64K is one Figure 6 point: DPS ring, 64 KB blocks.
func BenchmarkFigure6RingDPS64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ringbench.RunDPS(simnet.GigabitEthernet(), 4, 4<<20, 64<<10, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.TotalBytes)
	}
}

// BenchmarkFigure6RingRaw64K is the matching raw-transfer baseline.
func BenchmarkFigure6RingRaw64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ringbench.RunRaw(simnet.GigabitEthernet(), 4, 4<<20, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.TotalBytes)
	}
}

// BenchmarkTable1MatmulPipelined is one Table 1 cell: n=256, s=8, 2 nodes.
func BenchmarkTable1MatmulPipelined(b *testing.B) {
	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	app, err := dps.NewSim(net, dps.WithNodes("m0", "m1", "m2"), dps.WithWindow(256))
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	mm, err := parlin.NewMatmul(app.Core(), parlin.MatmulOptions{Name: "mm", Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := mm.WorkersCollection().MapNodes("m1", "m2"); err != nil {
		b.Fatal(err)
	}
	x := matrix.Random(256, 256, 1)
	y := matrix.Random(256, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.Run(x, y, 8, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9LifeIteration is one Figure 9 point: 1000x1000 world on
// 4 nodes, improved graph, per-iteration cost.
func BenchmarkFigure9LifeIteration(b *testing.B) {
	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	app, err := dps.NewSim(net, dps.WithNodes("l0", "l1", "l2", "l3"))
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	sim, err := parlife.New(app.Core(), 1000, 1000, parlife.Options{Name: "life", Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Load(life.RandomWorld(1000, 1000, 0.3, 1)); err != nil {
		b.Fatal(err)
	}
	if err := sim.Step(true); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ServiceCall is one Table 2 point: a 400x400 block read
// from a 1404x1404 world on 4 nodes (no concurrent iteration).
func BenchmarkTable2ServiceCall(b *testing.B) {
	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	app, err := dps.NewSim(net, dps.WithNodes("s0", "s1", "s2", "s3"))
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	sim, err := parlife.New(app.Core(), 1404, 1404, parlife.Options{Name: "life", Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Load(life.RandomWorld(1404, 1404, 0.3, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReadBlock(i%1404, (i*13)%1404, 400, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure15LUPipelined is one Figure 15 point: n=512, r=32,
// 4 nodes, stream-pipelined graph.
func BenchmarkFigure15LUPipelined(b *testing.B) {
	benchLU(b, true)
}

// BenchmarkFigure15LUNonPipelined is the merge-split comparison point.
func BenchmarkFigure15LUNonPipelined(b *testing.B) {
	benchLU(b, false)
}

func benchLU(b *testing.B, pipelined bool) {
	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	app, err := dps.NewSim(net, dps.WithNodes("u0", "u1", "u2", "u3"), dps.WithWindow(256))
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	lu, err := parlin.NewLU(app.Core(), 512, 32, parlin.LUOptions{Name: "lu", Workers: 4, Pipelined: pipelined})
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random(512, 512, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lu.FactorOnly(a); err != nil {
			b.Fatal(err)
		}
	}
}
