package main

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/dps"
)

// TestFormatStatsCoversEveryField perturbs each dps.Stats field in turn and
// requires the rendered text to change: a counter the engine maintains but
// -stats never prints is invisible to the person reading the experiment
// output, which is how coverage gaps in the emitters went unnoticed before
// this test existed.
func TestFormatStatsCoversEveryField(t *testing.T) {
	baseline := formatStats(&dps.Stats{})
	typ := reflect.TypeOf(dps.Stats{})
	for i := 0; i < typ.NumField(); i++ {
		s := &dps.Stats{}
		reflect.ValueOf(s).Elem().Field(i).SetInt(7919) // a value no format string embeds
		if formatStats(s) == baseline {
			t.Errorf("formatStats output does not change with Stats.%s: add the counter to the -stats rendering", typ.Field(i).Name)
		}
	}
}

// TestJSONStatsCoversEveryField pins that the -json emitter carries every
// Stats field under its Go name (Stats marshals untagged, so this holds
// automatically — until someone adds json tags that drop or rename fields
// and silently breaks archived BENCH_<sha>.json comparability).
func TestJSONStatsCoversEveryField(t *testing.T) {
	s := &dps.Stats{}
	typ := reflect.TypeOf(dps.Stats{})
	for i := 0; i < typ.NumField(); i++ {
		reflect.ValueOf(s).Elem().Field(i).SetInt(int64(1000 + i))
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		got, ok := m[name]
		if !ok {
			t.Errorf("JSON stats object has no %q key: archived benchmark files lose the counter", name)
			continue
		}
		if int(got) != 1000+i {
			t.Errorf("JSON stats %q = %v, want %d: field mapped to the wrong key", name, got, 1000+i)
		}
	}
	if len(m) != typ.NumField() {
		t.Errorf("JSON stats object has %d keys for %d fields", len(m), typ.NumField())
	}
}
