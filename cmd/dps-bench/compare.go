package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// compareFiles diffs two -json outputs (old, new) experiment by experiment
// and reports regressions beyond the noise threshold: ns/op and allocs/op
// growing by more than threshold (a fraction, e.g. 0.10) fail the
// comparison, and the throughput experiment additionally fails on its
// primary metric — tokens/s per (size, mode) row dropping by more than the
// threshold (direction inverted: lower is worse). Experiments present in
// only one file are reported but do not fail it (the suite grows over
// time). CI uses this to gate on the ring benchmark's trajectory without
// hand-reading artifacts.
func compareFiles(oldPath, newPath string, threshold float64, out *strings.Builder) (regressed bool, err error) {
	oldDoc, err := readBenchFile(oldPath)
	if err != nil {
		return false, fmt.Errorf("read %s: %w", oldPath, err)
	}
	newDoc, err := readBenchFile(newPath)
	if err != nil {
		return false, fmt.Errorf("read %s: %w", newPath, err)
	}
	if oldDoc.Quick != newDoc.Quick || oldDoc.Workers != newDoc.Workers {
		fmt.Fprintf(out, "note: configurations differ (quick %v/%v, workers %d/%d) — deltas may not be meaningful\n",
			oldDoc.Quick, newDoc.Quick, oldDoc.Workers, newDoc.Workers)
	}
	oldByID := make(map[string]measurement, len(oldDoc.Experiments))
	for _, m := range oldDoc.Experiments {
		oldByID[m.ID] = m
	}
	fmt.Fprintf(out, "%-12s %15s %15s %9s   %15s %15s %9s\n",
		"experiment", "ns/op old", "ns/op new", "delta", "allocs old", "allocs new", "delta")
	for _, n := range newDoc.Experiments {
		o, ok := oldByID[n.ID]
		if !ok {
			fmt.Fprintf(out, "%-12s (new experiment, no baseline)\n", n.ID)
			continue
		}
		delete(oldByID, n.ID)
		nsDelta := ratio(float64(n.NsOp), float64(o.NsOp))
		allocDelta := ratio(float64(n.AllocsOp), float64(o.AllocsOp))
		nsBad := nsDelta > threshold
		allocBad := allocDelta > threshold
		mark := ""
		if nsBad || allocBad {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Fprintf(out, "%-12s %15d %15d %8.1f%%   %15d %15d %8.1f%%%s\n",
			n.ID, o.NsOp, n.NsOp, nsDelta*100, o.AllocsOp, n.AllocsOp, allocDelta*100, mark)
		if n.ID == "throughput" && compareThroughput(o, n, threshold, out) {
			regressed = true
		}
		if n.ID == "serve" && compareServe(o, n, threshold, out) {
			regressed = true
		}
	}
	for id := range oldByID {
		fmt.Fprintf(out, "%-12s (dropped from the new run)\n", id)
	}
	return regressed, nil
}

// compareThroughput gates the throughput experiment on its primary metric:
// tokens/s per (size, mode) table row. The regression direction is inverted
// relative to ns/op — new LOWER than old beyond the threshold fails. Rows
// are matched by their size and mode columns, so reordering or adding
// payload sizes does not fail the gate; only a measured rate falling does.
func compareThroughput(o, n measurement, threshold float64, out *strings.Builder) (regressed bool) {
	col := func(m measurement) int {
		for i, h := range m.Header {
			if h == "tokens/s" {
				return i
			}
		}
		return -1
	}
	oc, nc := col(o), col(n)
	if oc < 0 || nc < 0 || oc < 2 || nc < 2 {
		return false
	}
	oldRate := make(map[string]float64, len(o.Rows))
	for _, r := range o.Rows {
		if len(r) > oc {
			if v, err := strconv.ParseFloat(strings.TrimSpace(r[oc]), 64); err == nil {
				oldRate[strings.TrimSpace(r[0])+"/"+strings.TrimSpace(r[1])] = v
			}
		}
	}
	for _, r := range n.Rows {
		if len(r) <= nc {
			continue
		}
		key := strings.TrimSpace(r[0]) + "/" + strings.TrimSpace(r[1])
		ov, ok := oldRate[key]
		if !ok || ov <= 0 {
			continue
		}
		nv, err := strconv.ParseFloat(strings.TrimSpace(r[nc]), 64)
		if err != nil {
			continue
		}
		mark := ""
		if (ov-nv)/ov > threshold {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Fprintf(out, "  %-22s %12.0f -> %-12.0f tokens/s %+7.1f%%%s\n",
			key, ov, nv, (nv-ov)/ov*100, mark)
	}
	return regressed
}

// compareServe gates the serve experiment per (workload, mode) row on both
// of its service-level metrics: calls/s falling by more than the threshold
// (higher is better) and the p99 of completed calls rising by more than the
// threshold (lower is better). When a file carries the row's structured
// latency histogram (measurement.Hists, emitted since the observability
// work) its exact p99 is preferred over the printed table cell, so the gate
// is immune to cell formatting and rounding. Registry isolation rows carry
// "-" latency cells and no histogram, so they are gated on calls/s only;
// rows present in just one file are skipped like compareThroughput's.
func compareServe(o, n measurement, threshold float64, out *strings.Builder) (regressed bool) {
	col := func(m measurement, name string) int {
		for i, h := range m.Header {
			if h == name {
				return i
			}
		}
		return -1
	}
	type serveRow struct{ rate, p99 float64 }
	parse := func(m measurement, rateCol, p99Col int) map[string]serveRow {
		rows := make(map[string]serveRow, len(m.Rows))
		for _, r := range m.Rows {
			if len(r) <= rateCol || len(r) <= p99Col {
				continue
			}
			rate, err := strconv.ParseFloat(strings.TrimSpace(r[rateCol]), 64)
			if err != nil {
				continue
			}
			// Latency is optional: registry rows print "-" there.
			p99, err := strconv.ParseFloat(strings.TrimSpace(r[p99Col]), 64)
			if err != nil {
				p99 = 0
			}
			rows[strings.TrimSpace(r[0])+"/"+strings.TrimSpace(r[1])] = serveRow{rate: rate, p99: p99}
		}
		return rows
	}
	oRate, oP99 := col(o, "calls/s"), col(o, "p99[ms]")
	nRate, nP99 := col(n, "calls/s"), col(n, "p99[ms]")
	if oRate < 2 || oP99 < 0 || nRate < 2 || nP99 < 0 {
		return false
	}
	oldRows := parse(o, oRate, oP99)
	for _, r := range n.Rows {
		if len(r) <= nRate || len(r) <= nP99 {
			continue
		}
		key := strings.TrimSpace(r[0]) + "/" + strings.TrimSpace(r[1])
		ov, ok := oldRows[key]
		if !ok || ov.rate <= 0 {
			continue
		}
		nv, err := strconv.ParseFloat(strings.TrimSpace(r[nRate]), 64)
		if err != nil {
			continue
		}
		p99, err := strconv.ParseFloat(strings.TrimSpace(r[nP99]), 64)
		if err != nil {
			p99 = 0
		}
		// Structured histograms beat printed cells on either side.
		if v, ok := histP99ms(o, key); ok {
			ov.p99 = v
		}
		if v, ok := histP99ms(n, key); ok {
			p99 = v
		}
		rateBad := (ov.rate-nv)/ov.rate > threshold
		p99Bad := ov.p99 > 0 && p99 > 0 && (p99-ov.p99)/ov.p99 > threshold
		mark := ""
		if rateBad || p99Bad {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Fprintf(out, "  %-22s %12.0f -> %-12.0f calls/s %+7.1f%%  p99 %7.2f -> %-7.2f ms%s\n",
			key, ov.rate, nv, (nv-ov.rate)/ov.rate*100, ov.p99, p99, mark)
	}
	return regressed
}

// histP99ms returns the exact p99 (in milliseconds) of one row's structured
// latency histogram, when the measurement carries it.
func histP99ms(m measurement, key string) (float64, bool) {
	h := m.Hists[key]
	if h == nil || h.Len() == 0 {
		return 0, false
	}
	return float64(h.Percentile(99)) / float64(time.Millisecond), true
}

// ratio returns (new-old)/old, clamping a zero baseline to "no change" —
// a dimension that was never measured cannot regress.
func ratio(newV, oldV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &benchFile{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, err
	}
	if doc.Schema != "dps-bench/1" {
		return nil, fmt.Errorf("unknown schema %q", doc.Schema)
	}
	return doc, nil
}

// runCompare implements the -compare mode: exit 0 on no regression, 1 on
// regression, 2 on usage/read errors. The flag package stops parsing at
// the first positional argument, so `-threshold` given after the two file
// operands (as the usage line shows) is scanned here.
func runCompare(args []string, threshold float64) int {
	var files []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-threshold" || arg == "--threshold":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "dps-bench: -threshold needs a value")
				return 2
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dps-bench: bad threshold %q\n", args[i])
				return 2
			}
			threshold = v
		case strings.HasPrefix(arg, "-threshold=") || strings.HasPrefix(arg, "--threshold="):
			v, err := strconv.ParseFloat(arg[strings.IndexByte(arg, '=')+1:], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dps-bench: bad threshold %q\n", arg)
				return 2
			}
			threshold = v
		default:
			files = append(files, arg)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dps-bench -compare old.json new.json [-threshold 0.10]")
		return 2
	}
	var sb strings.Builder
	regressed, err := compareFiles(files[0], files[1], threshold, &sb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dps-bench:", err)
		return 2
	}
	fmt.Print(sb.String())
	if regressed {
		fmt.Printf("regression beyond %.0f%% threshold\n", threshold*100)
		return 1
	}
	fmt.Printf("no regression beyond %.0f%% threshold\n", threshold*100)
	return 0
}
