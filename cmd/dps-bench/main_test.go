package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/dps"
	"repro/internal/bench"
	"repro/internal/trace"
)

func TestWriteJSON(t *testing.T) {
	r := &bench.Report{
		ID: "figure6",
		Table: &trace.Table{
			Header: []string{"size[B]", "DPS[MB/s]"},
			Rows:   [][]string{{"1024", "12.5"}},
		},
		Stats: &dps.Stats{TokensPosted: 42, MigrationsCompleted: 1, TokensForwarded: 7},
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runtime.ReadMemStats(&after)
	m := measure(r, 1500*time.Millisecond, &before, &after)
	if m.NsOp != 1500*time.Millisecond.Nanoseconds() {
		t.Fatalf("NsOp = %d", m.NsOp)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeJSON(path, []measurement{m}, bench.Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if doc.Schema != "dps-bench/1" || !doc.Quick {
		t.Fatalf("doc header = %+v", doc)
	}
	if len(doc.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(doc.Experiments))
	}
	e := doc.Experiments[0]
	if e.ID != "figure6" || e.NsOp != m.NsOp || len(e.Rows) != 1 || e.Rows[0][1] != "12.5" {
		t.Fatalf("experiment = %+v", e)
	}
	if e.Stats == nil || e.Stats.TokensPosted != 42 || e.Stats.MigrationsCompleted != 1 {
		t.Fatalf("stats = %+v", e.Stats)
	}
}

func TestFormatStatsIncludesMigrationCounters(t *testing.T) {
	out := formatStats(&dps.Stats{MigrationsCompleted: 3, TokensForwarded: 17, MigrationBytes: 512})
	for _, want := range []string{"migrations        3", "forwarded 17 tokens", "512 state bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatStats output missing %q:\n%s", want, out)
		}
	}
}
