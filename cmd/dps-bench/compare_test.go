package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, ms []measurement) string {
	t.Helper()
	doc := benchFile{Schema: "dps-bench/1", GoVersion: "go1.22", Quick: true, Experiments: ms}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{
		{ID: "figure6", NsOp: 1000, AllocsOp: 500},
		{ID: "rebalance", NsOp: 2000, AllocsOp: 700},
	})
	newP := writeBench(t, dir, "new.json", []measurement{
		{ID: "figure6", NsOp: 1050, AllocsOp: 510}, // +5%, +2%: within 10%
		{ID: "rebalance", NsOp: 1900, AllocsOp: 700},
	})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unexpected regression:\n%s", sb.String())
	}
}

func TestCompareDetectsNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 500}})
	newP := writeBench(t, dir, "new.json", []measurement{{ID: "figure6", NsOp: 1200, AllocsOp: 500}})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("20%% ns/op growth not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report lacks the regression marker:\n%s", sb.String())
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 500}})
	newP := writeBench(t, dir, "new.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 600}})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20% alloc growth not flagged")
	}
}

func TestCompareToleratesSuiteDrift(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{
		{ID: "figure6", NsOp: 1000, AllocsOp: 500},
		{ID: "gone", NsOp: 1, AllocsOp: 1},
	})
	newP := writeBench(t, dir, "new.json", []measurement{
		{ID: "figure6", NsOp: 900, AllocsOp: 450},
		{ID: "failover", NsOp: 5000, AllocsOp: 9000}, // new experiment: no baseline
	})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("suite drift must not fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "no baseline") || !strings.Contains(out, "dropped") {
		t.Fatalf("drift not reported:\n%s", out)
	}
}

func TestCompareRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeBench(t, dir, "good.json", nil)
	var sb strings.Builder
	if _, err := compareFiles(bad, good, 0.10, &sb); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
