package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/dps"
)

func writeBench(t *testing.T, dir, name string, ms []measurement) string {
	t.Helper()
	doc := benchFile{Schema: "dps-bench/1", GoVersion: "go1.22", Quick: true, Experiments: ms}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{
		{ID: "figure6", NsOp: 1000, AllocsOp: 500},
		{ID: "rebalance", NsOp: 2000, AllocsOp: 700},
	})
	newP := writeBench(t, dir, "new.json", []measurement{
		{ID: "figure6", NsOp: 1050, AllocsOp: 510}, // +5%, +2%: within 10%
		{ID: "rebalance", NsOp: 1900, AllocsOp: 700},
	})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unexpected regression:\n%s", sb.String())
	}
}

func TestCompareDetectsNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 500}})
	newP := writeBench(t, dir, "new.json", []measurement{{ID: "figure6", NsOp: 1200, AllocsOp: 500}})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("20%% ns/op growth not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report lacks the regression marker:\n%s", sb.String())
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 500}})
	newP := writeBench(t, dir, "new.json", []measurement{{ID: "figure6", NsOp: 1000, AllocsOp: 600}})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20% alloc growth not flagged")
	}
}

func TestCompareToleratesSuiteDrift(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{
		{ID: "figure6", NsOp: 1000, AllocsOp: 500},
		{ID: "gone", NsOp: 1, AllocsOp: 1},
	})
	newP := writeBench(t, dir, "new.json", []measurement{
		{ID: "figure6", NsOp: 900, AllocsOp: 450},
		{ID: "failover", NsOp: 5000, AllocsOp: 9000}, // new experiment: no baseline
	})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, newP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("suite drift must not fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "no baseline") || !strings.Contains(out, "dropped") {
		t.Fatalf("drift not reported:\n%s", out)
	}
}

// tpMeasurement builds a throughput measurement with one (size, mode) row
// per rate; the header matches what bench.Throughput emits.
func tpMeasurement(rates map[string]string) measurement {
	m := measurement{
		ID:     "throughput",
		NsOp:   1000,
		Header: []string{"size[B]", "mode", "tokens/s", "MB/s", "egress/payload", "vs plain"},
	}
	for _, key := range []string{"1024/plain", "1024/batch", "65536/plain", "65536/batch"} {
		if rate, ok := rates[key]; ok {
			size, mode, _ := strings.Cut(key, "/")
			m.Rows = append(m.Rows, []string{size, mode, rate, "1.0", "1.000", "1.00x"})
		}
	}
	return m
}

func TestCompareThroughputGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{tpMeasurement(map[string]string{
		"1024/plain": "30000", "1024/batch": "100000", "65536/plain": "2700", "65536/batch": "2600",
	})})

	// Within threshold (and ns/op stable): tokens/s may wobble 5% down.
	okP := writeBench(t, dir, "ok.json", []measurement{tpMeasurement(map[string]string{
		"1024/plain": "29000", "1024/batch": "95000", "65536/plain": "2700", "65536/batch": "2600",
	})})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, okP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("5%% tokens/s wobble flagged:\n%s", sb.String())
	}

	// tokens/s dropping 40% on one row must fail even though ns/op and
	// allocs are unchanged (the direction is inverted: lower rate = worse).
	badP := writeBench(t, dir, "bad.json", []measurement{tpMeasurement(map[string]string{
		"1024/plain": "30000", "1024/batch": "60000", "65536/plain": "2700", "65536/batch": "2600",
	})})
	sb.Reset()
	regressed, err = compareFiles(oldP, badP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("40%% tokens/s drop not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "1024/batch") || !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("regressed row not reported:\n%s", sb.String())
	}

	// A new payload size with no baseline row must not fail the gate.
	driftDoc := tpMeasurement(map[string]string{
		"1024/plain": "30000", "1024/batch": "100000", "65536/plain": "2700", "65536/batch": "2600",
	})
	driftDoc.Rows = append(driftDoc.Rows, []string{"524288", "plain", "400", "200.0", "1.000", "1.00x"})
	driftP := writeBench(t, dir, "drift.json", []measurement{driftDoc})
	sb.Reset()
	regressed, err = compareFiles(oldP, driftP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("new payload size without baseline failed the gate:\n%s", sb.String())
	}
}

// histOf builds a latency histogram whose every sample is d.
func histOf(d time.Duration, n int) *dps.Hist {
	h := &dps.Hist{}
	for i := 0; i < n; i++ {
		h.Add(d)
	}
	return h
}

// TestCompareServePrefersStructuredHists: when the -json files carry the
// serve rows' latency histograms, the gate reads exact percentiles from
// them and ignores the printed table cells in both directions.
func TestCompareServePrefersStructuredHists(t *testing.T) {
	dir := t.TempDir()
	rows := map[string][2]string{"echo/sharded": {"45000", "60.00"}}

	oldM := svMeasurement(rows)
	oldM.Hists = map[string]*dps.Hist{"echo/sharded": histOf(50*time.Millisecond, 100)}
	oldP := writeBench(t, dir, "old.json", []measurement{oldM})

	// Table cells identical, but the structured p99 doubled: must regress.
	badM := svMeasurement(rows)
	badM.Hists = map[string]*dps.Hist{"echo/sharded": histOf(100*time.Millisecond, 100)}
	badP := writeBench(t, dir, "bad.json", []measurement{badM})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, badP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("structured p99 doubling not flagged:\n%s", sb.String())
	}

	// Table cell rises 42% but the structured p99 is stable: must pass.
	okM := svMeasurement(map[string][2]string{"echo/sharded": {"45000", "85.00"}})
	okM.Hists = map[string]*dps.Hist{"echo/sharded": histOf(50*time.Millisecond, 100)}
	okP := writeBench(t, dir, "ok.json", []measurement{okM})
	sb.Reset()
	if regressed, err = compareFiles(oldP, okP, 0.10, &sb); err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("stable structured p99 overridden by a printed cell:\n%s", sb.String())
	}
}

func TestCompareRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeBench(t, dir, "good.json", nil)
	var sb strings.Builder
	if _, err := compareFiles(bad, good, 0.10, &sb); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func svMeasurement(rows map[string][2]string) measurement {
	m := measurement{
		ID:     "serve",
		NsOp:   1000,
		Header: []string{"workload", "mode", "calls/s", "p50[ms]", "p99[ms]", "p999[ms]", "rejected", "expired"},
	}
	for _, key := range []string{"echo/mutex", "echo/sharded", "fan/sharded", "registry/sharded"} {
		if v, ok := rows[key]; ok {
			workload, mode, _ := strings.Cut(key, "/")
			p50, p999 := "10.00", "90.00"
			if v[1] == "-" {
				p50, p999 = "-", "-"
			}
			m.Rows = append(m.Rows, []string{workload, mode, v[0], p50, v[1], p999, "0", "0"})
		}
	}
	return m
}

func TestCompareServeGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", []measurement{svMeasurement(map[string][2]string{
		"echo/mutex": {"20000", "60.00"}, "echo/sharded": {"45000", "55.00"},
		"fan/sharded": {"12000", "150.00"}, "registry/sharded": {"5000000", "-"},
	})})

	// Wobble within the threshold on both metrics passes.
	okP := writeBench(t, dir, "ok.json", []measurement{svMeasurement(map[string][2]string{
		"echo/mutex": {"19000", "63.00"}, "echo/sharded": {"43000", "58.00"},
		"fan/sharded": {"11500", "155.00"}, "registry/sharded": {"4800000", "-"},
	})})
	var sb strings.Builder
	regressed, err := compareFiles(oldP, okP, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("serve wobble within threshold flagged:\n%s", sb.String())
	}

	// calls/s dropping 30% on one row fails (higher is better).
	rateP := writeBench(t, dir, "rate.json", []measurement{svMeasurement(map[string][2]string{
		"echo/mutex": {"20000", "60.00"}, "echo/sharded": {"31000", "55.00"},
		"fan/sharded": {"12000", "150.00"}, "registry/sharded": {"5000000", "-"},
	})})
	sb.Reset()
	if regressed, err = compareFiles(oldP, rateP, 0.10, &sb); err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(sb.String(), "echo/sharded") {
		t.Fatalf("30%% calls/s drop not flagged:\n%s", sb.String())
	}

	// p99 rising 50% fails even with calls/s holding (lower is better).
	p99P := writeBench(t, dir, "p99.json", []measurement{svMeasurement(map[string][2]string{
		"echo/mutex": {"20000", "60.00"}, "echo/sharded": {"45000", "85.00"},
		"fan/sharded": {"12000", "150.00"}, "registry/sharded": {"5000000", "-"},
	})})
	sb.Reset()
	if regressed, err = compareFiles(oldP, p99P, 0.10, &sb); err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("p99 rise not flagged:\n%s", sb.String())
	}

	// Registry rows carry "-" latency cells: gated on ops/s only, and a
	// 30% drop there still fails.
	regP := writeBench(t, dir, "reg.json", []measurement{svMeasurement(map[string][2]string{
		"echo/mutex": {"20000", "60.00"}, "echo/sharded": {"45000", "55.00"},
		"fan/sharded": {"12000", "150.00"}, "registry/sharded": {"3400000", "-"},
	})})
	sb.Reset()
	if regressed, err = compareFiles(oldP, regP, 0.10, &sb); err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(sb.String(), "registry/sharded") {
		t.Fatalf("registry ops/s drop not flagged:\n%s", sb.String())
	}
}
