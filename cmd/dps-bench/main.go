// Command dps-bench regenerates the paper's evaluation tables and figures
// on the simulated cluster.
//
// Usage:
//
//	dps-bench -exp figure6|table1|figure9|table2|figure15|rebalance|failover|throughput|serve|all
//	          [-quick] [-workers N] [-stats] [-write EXPERIMENTS.md]
//	          [-json results.json]
//	dps-bench -exp chaos [-seed N] [-duration D] [-quick]
//	dps-bench -compare old.json new.json [-threshold 0.10]
//
// -compare diffs two -json outputs experiment by experiment and exits
// non-zero when ns/op or allocs/op regressed beyond the threshold; CI uses
// it to gate on the ring benchmark's trajectory against the previous run.
//
// Without -write the regenerated tables print to stdout; with -write the
// output is additionally assembled into the experiments report file,
// recording paper-reference values next to the measured rows. -workers
// shards every node's scheduler over N drainer lanes (scheduler worker lanes);
// -stats dumps the aggregated engine counters of each experiment (tokens,
// bytes, flow-control stalls, queue depths, drainer handoffs, migrations).
// -json writes machine-readable results — per experiment: wall-clock ns,
// allocation bytes/counts of the host process, the table rows and the
// engine counters — so CI can archive one BENCH_<sha>.json per commit and
// the performance trajectory has data points.
//
// The rebalance experiment is not in the paper: it prices the placement
// layer's live thread migration by remapping a ring hop mid-benchmark.
//
// The throughput experiment (not in the paper) measures the wire path over
// real loopback TCP — wall-clock tokens/sec and goodput at several payload
// sizes, with wire batching and fault tolerance toggled — and is the
// regression harness for the batched wire path (-compare gates on its
// tokens/s trajectory).
//
// The serve experiment (not in the paper) saturates a 3-node real-TCP
// deployment with thousands of concurrent closed-loop callers and compares
// the single-mutex pending-call table with the sharded registry under
// admission control and the deadline-aware flow policy; -compare gates on
// its calls/s and p99 trajectory.
//
// The chaos experiment (also not in the paper, and not part of -exp all)
// soaks the ring and the Game of Life under seeded randomized fault
// schedules — delivery jitter, transient send errors, healing partitions,
// node crashes — and fails unless every call completes, transients cause
// zero failovers and every crash exactly one. -seed reproduces a failing
// schedule exactly; -duration stretches the soak (CI's nightly job runs
// it for minutes with a randomized seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/dps"
	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: figure6, table1, figure9, table2, figure15, rebalance, failover, throughput, serve, chaos or all (all = every experiment except chaos, which binds wall-clock minutes and must be requested explicitly)")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	workers := flag.Int("workers", 0, "scheduler worker lanes per node (0 = per-instance drainers)")
	stats := flag.Bool("stats", false, "dump aggregated engine counters per experiment")
	write := flag.String("write", "", "also write the report to this file (e.g. EXPERIMENTS.md)")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file")
	compare := flag.Bool("compare", false, "compare two -json files (old new) and fail on regression")
	threshold := flag.Float64("threshold", 0.10, "with -compare: regression threshold as a fraction")
	seed := flag.Int64("seed", 0, "chaos: fault-schedule seed (0 = default; a failure reproduces from its seed)")
	duration := flag.Duration("duration", 0, "chaos: soak span per workload (0 = default)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}

	opt := bench.Options{Quick: *quick, Workers: *workers, Seed: *seed, Duration: *duration}
	fns := map[string]func(bench.Options) (*bench.Report, error){
		"figure6":    bench.Figure6,
		"table1":     bench.Table1,
		"figure9":    bench.Figure9,
		"table2":     bench.Table2,
		"figure15":   bench.Figure15,
		"rebalance":  bench.Rebalance,
		"failover":   bench.Failover,
		"throughput": bench.Throughput,
		"serve":      bench.Serve,
		"chaos":      bench.Chaos,
	}
	var order []string
	if *exp == "all" {
		order = []string{"figure6", "table1", "figure9", "table2", "figure15", "rebalance", "failover", "throughput", "serve"}
	} else {
		if _, ok := fns[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		order = []string{*exp}
	}

	var reports []*bench.Report
	var measures []measurement
	for _, id := range order {
		fmt.Fprintf(os.Stderr, "running %s ...\n", id)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := fns[id](opt)
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, elapsed.Round(time.Millisecond))
		fmt.Println(r.String())
		if *stats && r.Stats != nil {
			fmt.Println(formatStats(r.Stats))
		}
		reports = append(reports, r)
		measures = append(measures, measure(r, elapsed, &before, &after))
	}

	if *write != "" {
		if err := os.WriteFile(*write, []byte(renderMarkdown(reports, opt)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *write, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *write)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, measures, opt); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

// measurement is the machine-readable record of one experiment run.
type measurement struct {
	ID string `json:"id"`
	// NsOp is the experiment's wall-clock time in nanoseconds (one
	// experiment = one "op", mirroring go test -bench units).
	NsOp int64 `json:"ns_op"`
	// BytesOp / AllocsOp are the host process's heap allocation deltas
	// across the experiment.
	BytesOp  uint64 `json:"bytes_op"`
	AllocsOp uint64 `json:"allocs_op"`
	// Header and Rows reproduce the experiment's table.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Stats are the aggregated engine counters (tokens, bytes, stalls,
	// migrations, forwarded tokens, ...).
	Stats *dps.Stats `json:"stats,omitempty"`
	// Hists carries the experiment's latency distributions keyed by table
	// row (serve's "workload/mode" completed-call latency, chaos's
	// "recovery/workload" crash-to-recovered latency): exact counts and
	// sparse buckets plus derived percentiles, so -compare gates on
	// structured values instead of re-parsing printed table cells.
	Hists map[string]*dps.Hist `json:"hists,omitempty"`
}

func measure(r *bench.Report, elapsed time.Duration, before, after *runtime.MemStats) measurement {
	return measurement{
		ID:       r.ID,
		NsOp:     elapsed.Nanoseconds(),
		BytesOp:  after.TotalAlloc - before.TotalAlloc,
		AllocsOp: after.Mallocs - before.Mallocs,
		Header:   r.Table.Header,
		Rows:     r.Table.Rows,
		Stats:    r.Stats,
		Hists:    r.Hists,
	}
}

// benchFile is the top-level -json document.
type benchFile struct {
	Schema      string        `json:"schema"`
	GoVersion   string        `json:"go_version"`
	Quick       bool          `json:"quick"`
	Workers     int           `json:"workers"`
	Experiments []measurement `json:"experiments"`
}

func writeJSON(path string, measures []measurement, opt bench.Options) error {
	doc := benchFile{
		Schema:      "dps-bench/1",
		GoVersion:   runtime.Version(),
		Quick:       opt.Quick,
		Workers:     opt.Workers,
		Experiments: measures,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// formatStats renders an experiment's aggregated engine counters.
func formatStats(s *dps.Stats) string {
	return fmt.Sprintf(`engine stats:
  tokens posted     %d (local %d, remote %d)
  bytes sent        %d
  groups opened     %d
  acks sent         %d
  window stalls     %d
  calls completed   %d
  calls admitted    %d (rejected %d at admission, expired %d at deadline)
  queue high-water  %d
  drainer handoffs  %d
  frames batched    %d (max %d tokens/frame)
  batch compression %d -> %d bytes
  migrations        %d (forwarded %d tokens, %d state bytes)
  fault tolerance   %d checkpoints (%d state bytes), %d replayed, %d failovers
  send retries      %d (transient faults absorbed in the grace window)
`, s.TokensPosted, s.TokensLocal, s.TokensRemote, s.BytesSent,
		s.GroupsOpened, s.AcksSent, s.WindowStalls, s.CallsCompleted,
		s.CallsAdmitted, s.CallsRejected, s.CallsExpired,
		s.QueueHighWater, s.DrainerHandoffs,
		s.FramesBatched, s.TokensPerFrame,
		s.UncompressedBytes, s.CompressedBytes,
		s.MigrationsCompleted, s.TokensForwarded, s.MigrationBytes,
		s.CheckpointsTaken, s.CheckpointBytes, s.TokensReplayed, s.FailoversCompleted,
		s.SendRetries)
}

func renderMarkdown(reports []*bench.Report, opt bench.Options) string {
	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Generated by `cmd/dps-bench`")
	if opt.Quick {
		sb.WriteString(" (quick mode — reduced problem sizes)")
	}
	sb.WriteString(" on the simulated cluster substrate (internal/simnet,\n")
	sb.WriteString("Gigabit-Ethernet-class model; see DESIGN.md for the substitution table).\n")
	sb.WriteString("Absolute numbers are not comparable to the paper's 2003 testbed — the\n")
	sb.WriteString("*shape* columns and the notes record what must (and does) hold.\n\n")
	titles := map[string]string{
		"figure6":    "Figure 6 — round-trip ring throughput, DPS vs raw transfers",
		"table1":     "Table 1 — execution-time reduction from overlapping (block matmul)",
		"figure9":    "Figure 9 — Game of Life speedup, simple vs improved flow graph",
		"table2":     "Table 2 — world-read service calls during the simulation",
		"figure15":   "Figure 15 — LU factorization speedup, pipelined vs non-pipelined",
		"rebalance":  "Rebalance — live thread remap of a ring hop mid-benchmark (not in paper)",
		"failover":   "Failover — ring node crash mid-benchmark, checkpoint restore + replay (not in paper)",
		"throughput": "Throughput — batched wire path over real TCP loopback (not in paper)",
		"serve":      "Serve — 10k-caller saturation, sharded call registry vs single mutex (not in paper)",
		"chaos":      "Chaos — seeded fault schedules over live workloads (not in paper)",
	}
	for _, r := range reports {
		sb.WriteString("## " + titles[r.ID] + "\n\n```\n")
		sb.WriteString(r.Table.String())
		sb.WriteString("```\n\n")
		for _, n := range r.Notes {
			sb.WriteString("- " + n + "\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
