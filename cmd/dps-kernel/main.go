// Command dps-kernel runs the DPS runtime-environment daemons of the
// paper's §4 over real TCP sockets: a simple name server and per-node
// kernels that register with it. Kernels are named independently of host
// names, so several kernels can share one machine (the paper's debugging
// mode).
//
// Start a name server:
//
//	dps-kernel -serve-ns -listen 127.0.0.1:7000
//
// Start kernels against it:
//
//	dps-kernel -name nodeA -listen 127.0.0.1:0 -ns 127.0.0.1:7000
//	dps-kernel -name nodeB -listen 127.0.0.1:0 -ns 127.0.0.1:7000
//
// A -demo flag on one kernel runs the tutorial uppercase application,
// demonstrating lazy application attachment and on-demand TCP connections.
// With -serve the kernel keeps the demo application alive afterwards and
// accepts live-remap control messages from other processes:
//
//	dps-kernel -name nodeA -listen 127.0.0.1:0 -ns 127.0.0.1:7000 -demo -serve
//	dps-kernel -ns 127.0.0.1:7000 -remap-target nodeA -remap-app demo \
//	           -remap-collection workers -remap-spec "nodeA*4"
//
// The single-binary demo attaches only the local kernel, so its remaps
// exercise the control plane and placement epochs but cannot move threads
// off-machine. An application that attaches several kernels' transports to
// one engine App (see internal/kernel's tests) migrates threads between
// kernel processes with exactly the same control message — quiesce, state
// shipment over TCP, token forwarding included.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/dps"
	"repro/internal/kernel"
	"repro/internal/trace/promtext"
)

// Tokens of the demo application.
type demoReq struct {
	Text string
}

type demoWord struct {
	Word string
	Pos  int
}

type demoRes struct {
	Text string
}

var (
	_ = dps.Register[demoReq]()
	_ = dps.Register[demoWord]()
	_ = dps.Register[demoRes]()
)

func main() {
	serveNS := flag.Bool("serve-ns", false, "run the name server instead of a kernel")
	name := flag.String("name", "", "kernel name (required unless -serve-ns)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	ns := flag.String("ns", "127.0.0.1:7000", "name server address")
	demo := flag.Bool("demo", false, "run the uppercase demo across all registered kernels, then exit")
	serve := flag.Bool("serve", false, "with -demo: keep the demo app alive and accept live-remap control messages")
	workers := flag.Int("workers", 0, "demo app: scheduler worker lanes per node (0 = per-instance drainers)")
	window := flag.Int("window", 0, "demo app: per-split flow-control window (0 = default)")
	remapTarget := flag.String("remap-target", "", "client mode: kernel to send a live-remap control message to, then exit")
	remapApp := flag.String("remap-app", "demo", "client mode: application instance to remap")
	remapCollection := flag.String("remap-collection", "workers", "client mode: thread collection to remap")
	remapSpec := flag.String("remap-spec", "", "client mode: new placement in mapping-string syntax")
	heartbeat := flag.Duration("heartbeat", 0, "probe peer kernels at this interval and report deaths (with -demo -serve: enables checkpointing and automatic failover)")
	metricsListen := flag.String("metrics-listen", "", "serve /metrics (Prometheus text) and /debug/pprof on this address")
	traceSample := flag.Float64("trace-sample", 0, "demo app: fraction of calls to trace (0..1)")
	traceDump := flag.Uint64("trace-dump", 0, "client mode: collect the spans of this trace ID from every registered kernel, print the JSON timeline, then exit")
	flag.Parse()

	if *serveNS {
		srv, err := kernel.StartNameServer(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("name server listening on %s\n", srv.Addr())
		waitForInterrupt()
		_ = srv.Close()
		return
	}

	if *traceDump != 0 {
		spans, err := kernel.CollectTrace(*ns, *traceDump, 5*time.Second)
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(spans, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	if *remapTarget != "" {
		req := kernel.RemapRequest{App: *remapApp, Collection: *remapCollection, Spec: *remapSpec}
		if req.Spec == "" {
			fatal(fmt.Errorf("-remap-spec is required with -remap-target"))
		}
		if err := kernel.SendRemap(*ns, *remapTarget, req); err != nil {
			fatal(err)
		}
		fmt.Printf("remap request sent to %q: %s/%s -> %q\n", *remapTarget, req.App, req.Collection, req.Spec)
		return
	}

	if *name == "" {
		fatal(fmt.Errorf("a kernel needs -name"))
	}
	k, err := kernel.Start(*name, *listen, *ns)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kernel %q listening on %s (name server %s)\n", k.Name(), k.Addr(), *ns)

	if *demo {
		// The demo installs its own OnFailover handler (feeding the engine's
		// recovery) before the heartbeat starts, so a peer declared dead in
		// the startup window is not lost to a print-only handler.
		if err := runDemo(k, *ns, *workers, *window, *serve, *heartbeat, *metricsListen, *traceSample); err != nil {
			fatal(err)
		}
		_ = k.Close()
		return
	}
	if *metricsListen != "" {
		// A plain kernel hosts no application yet; the debug server still
		// exposes process gauges and pprof.
		if err := startDebugServer(*metricsListen, processMetricsHandler()); err != nil {
			fatal(err)
		}
	}
	if *heartbeat > 0 {
		k.OnFailover(func(peer string) { fmt.Printf("kernel %q declared dead\n", peer) })
		k.StartHeartbeat(*heartbeat, 3)
		fmt.Printf("heartbeating peers every %v\n", *heartbeat)
	}
	waitForInterrupt()
	_ = k.Close()
}

// startDebugServer serves the metrics handler plus net/http/pprof on addr,
// in the background for the life of the process.
func startDebugServer(addr string, metrics http.Handler) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// processMetricsHandler exports process-level gauges for a kernel that is
// not hosting an application (the engine counters come with the app).
func processMetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := &promtext.Encoder{}
		enc.Gauge("dps_goroutines", "Goroutines in this process.", float64(runtime.NumGoroutine()))
		w.Header().Set("Content-Type", promtext.ContentType)
		_, _ = w.Write(enc.Bytes())
	})
}

// runDemo builds the tutorial split-compute-merge graph over every kernel
// currently registered with the name server and converts a sentence to
// uppercase in parallel. With serve it then keeps calling the graph once a
// second and accepts live-remap control messages, printing the worker
// placement after each migration.
func runDemo(local *kernel.Kernel, ns string, workerLanes, window int, serve bool, heartbeat time.Duration, metricsListen string, traceSample float64) error {
	names, err := kernel.ListNames(ns)
	if err != nil {
		return err
	}
	var peers []string
	for n := range names {
		peers = append(peers, n)
	}
	sort.Strings(peers)
	fmt.Printf("demo across kernels: %v\n", peers)

	// In a full deployment every kernel process attaches its own instance
	// of the application; this single-binary demo attaches the local
	// kernel and runs four worker threads on it (the listing above shows
	// which peers a multi-process deployment would map to). With
	// -heartbeat the application also checkpoints, and a peer kernel
	// declared dead is handed to the engine's failover (for an application
	// spanning several kernels' transports this recovers the dead
	// kernel's threads onto the survivors).
	opts := []dps.Option{dps.WithWorkers(workerLanes), dps.WithWindow(window)}
	if heartbeat > 0 {
		opts = append(opts, dps.WithCheckpoint(10*heartbeat))
	}
	if traceSample > 0 {
		opts = append(opts, dps.WithTraceSampling(traceSample))
	}
	app, err := dps.Connect(local.Transport("demo"), opts...)
	if err != nil {
		return err
	}
	defer app.Close()
	// Trace-collection requests (dps-kernel -trace-dump) are answered from
	// the application's span rings.
	local.OnTrace(app.TraceSpans)
	if metricsListen != "" {
		if err := startDebugServer(metricsListen, app.MetricsHandler()); err != nil {
			return err
		}
	}
	if heartbeat > 0 {
		local.OnFailover(func(peer string) {
			if err := app.FailNode(peer); err != nil {
				fmt.Printf("failover of %q: %v\n", peer, err)
				return
			}
			fmt.Printf("kernel %q died; its threads were recovered (stats: %d failovers, %d replayed)\n",
				peer, app.Stats().FailoversCompleted, app.Stats().TokensReplayed)
		})
		local.StartHeartbeat(heartbeat, 3)
		fmt.Printf("heartbeating peers every %v\n", heartbeat)
	}

	main := dps.MustCollection[struct{}](app, "main")
	if err := main.Map(local.Name()); err != nil {
		return err
	}
	workers := dps.MustCollection[struct{}](app, "workers")
	if err := workers.Map(local.Name() + "*4"); err != nil {
		return err
	}

	split := dps.Split("split-words", main, dps.MainRoute(),
		func(c *dps.Ctx, in *demoReq, post func(*demoWord)) {
			for i, w := range strings.Fields(in.Text) {
				post(&demoWord{Word: w, Pos: i})
			}
		})
	upper := dps.Leaf("upper", workers, dps.RoundRobin(),
		func(c *dps.Ctx, in *demoWord) *demoWord {
			return &demoWord{Word: strings.ToUpper(in.Word), Pos: in.Pos}
		})
	merge := dps.Merge("join-words", main, dps.MainRoute(),
		func(c *dps.Ctx, first *demoWord, next func() (*demoWord, bool)) *demoRes {
			words := map[int]string{}
			max := 0
			for in, ok := first, true; ok; in, ok = next() {
				words[in.Pos] = in.Word
				if in.Pos > max {
					max = in.Pos
				}
			}
			out := make([]string, max+1)
			for i := range out {
				out[i] = words[i]
			}
			return &demoRes{Text: strings.Join(out, " ")}
		})
	g, err := dps.Build(app, "demo-upper",
		dps.Then(dps.Then(dps.Chain(split), upper), merge))
	if err != nil {
		return err
	}
	out, err := g.Call(context.Background(), &demoReq{Text: "dynamic parallel schedules over tcp kernels"})
	if err != nil {
		return err
	}
	fmt.Printf("demo result: %s\n", out.Text)
	if !serve {
		return nil
	}

	// Live mode: keep the application serving and let control messages
	// remap the worker collection while calls run.
	local.OnRemap(func(req kernel.RemapRequest) error {
		if req.App != "demo" {
			return fmt.Errorf("unknown app %q", req.App)
		}
		tc, ok := app.Collection(req.Collection)
		if !ok {
			return fmt.Errorf("unknown collection %q", req.Collection)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := tc.Remap(ctx, req.Spec); err != nil {
			fmt.Printf("remap failed: %v\n", err)
			return err
		}
		fmt.Printf("collection %q remapped (epoch %d): %v\n", req.Collection, tc.Epoch(), tc.Placements())
		return nil
	})
	fmt.Println("serving; send -remap-target control messages to migrate workers (ctrl-c to stop)")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	for i := 0; ; i++ {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-time.After(time.Second):
		}
		out, err := g.Call(context.Background(), &demoReq{Text: fmt.Sprintf("serving call %d over tcp kernels", i)})
		if err != nil {
			return err
		}
		fmt.Printf("call %d: %s (stats: %d migrations, %d forwarded)\n",
			i, out.Text, app.Stats().MigrationsCompleted, app.Stats().TokensForwarded)
	}
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dps-kernel:", err)
	os.Exit(1)
}
