// Command dps-graph prints Graphviz (DOT) renderings of the built-in
// application flow graphs — the paper stresses that DPS graphs "can be
// easily visualized" and used to reason about parallelization strategies.
//
// Usage:
//
//	dps-graph -graph upper|life-simple|life-improved|life-read|matmul|lu [-lu-n 256 -lu-r 64]
//
// Pipe the output through `dot -Tsvg` to render.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/parlife"
	"repro/internal/parlin"
	"repro/internal/serial"
)

type strToken struct {
	Str string
}

type chrToken struct {
	Chr byte
	Pos int
}

var (
	_ = serial.MustRegister[strToken]()
	_ = serial.MustRegister[chrToken]()
)

func main() {
	graph := flag.String("graph", "upper", "graph to print: upper, life-simple, life-improved, life-read, matmul, lu")
	luN := flag.Int("lu-n", 256, "LU matrix size (the graph is generated to fit it)")
	luR := flag.Int("lu-r", 64, "LU block size")
	flag.Parse()

	dot, err := buildDOT(*graph, *luN, *luR)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dps-graph:", err)
		os.Exit(1)
	}
	fmt.Print(dot)
}

func buildDOT(which string, luN, luR int) (string, error) {
	app, err := core.NewLocalApp(core.Config{}, "n0", "n1", "n2", "n3")
	if err != nil {
		return "", err
	}
	defer app.Close()

	switch which {
	case "upper":
		main := core.MustCollection[struct{}](app, "main")
		if err := main.Map("n0"); err != nil {
			return "", err
		}
		compute := core.MustCollection[struct{}](app, "compute")
		if err := compute.Map("n1 n2 n3"); err != nil {
			return "", err
		}
		split := core.Split[*strToken, *chrToken]("SplitString",
			func(c *core.Ctx, in *strToken, post func(*chrToken)) {
				for i := 0; i < len(in.Str); i++ {
					post(&chrToken{Chr: in.Str[i], Pos: i})
				}
			})
		upper := core.Leaf[*chrToken, *chrToken]("ToUpperCase",
			func(c *core.Ctx, in *chrToken) *chrToken { return in })
		merge := core.Merge[*chrToken, *strToken]("MergeString",
			func(c *core.Ctx, first *chrToken, next func() (*chrToken, bool)) *strToken {
				for _, ok := first, true; ok; _, ok = next() {
				}
				return &strToken{}
			})
		g, err := app.NewFlowgraph("upper", core.Path(
			core.NewNode(split, main, core.MainRoute()),
			core.NewNode(upper, compute, core.ByKey[*chrToken]("RoundRobinRoute", func(in *chrToken) int { return in.Pos })),
			core.NewNode(merge, main, core.MainRoute()),
		))
		if err != nil {
			return "", err
		}
		return g.DOT(), nil

	case "life-simple", "life-improved", "life-read":
		sim, err := parlife.New(app, 64, 64, parlife.Options{Name: "life", Workers: 4})
		if err != nil {
			return "", err
		}
		switch which {
		case "life-simple":
			g, _ := app.Graph("life-step-simple")
			return g.DOT(), nil
		case "life-improved":
			g, _ := app.Graph("life-step-improved")
			return g.DOT(), nil
		default:
			return sim.ReadGraph().DOT(), nil
		}

	case "matmul":
		mm, err := parlin.NewMatmul(app, parlin.MatmulOptions{Name: "matmul", Workers: 3})
		if err != nil {
			return "", err
		}
		return mm.Graph().DOT(), nil

	case "lu":
		lu, err := parlin.NewLU(app, luN, luR, parlin.LUOptions{Name: "lu", Pipelined: true})
		if err != nil {
			return "", err
		}
		return lu.Graph().DOT(), nil

	default:
		return "", fmt.Errorf("unknown graph %q (choose upper, life-simple, life-improved, life-read, matmul, lu)", which)
	}
}
