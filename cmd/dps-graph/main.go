// Command dps-graph prints Graphviz (DOT) renderings of the built-in
// application flow graphs — the paper stresses that DPS graphs "can be
// easily visualized" and used to reason about parallelization strategies.
//
// Usage:
//
//	dps-graph -graph upper|life-simple|life-improved|life-read|matmul|lu [-lu-n 256 -lu-r 64]
//
// Pipe the output through `dot -Tsvg` to render.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/dps"
	"repro/internal/parlife"
	"repro/internal/parlin"
)

type strToken struct {
	Str string
}

type chrToken struct {
	Chr byte
	Pos int
}

var (
	_ = dps.Register[strToken]()
	_ = dps.Register[chrToken]()
)

func main() {
	graph := flag.String("graph", "upper", "graph to print: upper, life-simple, life-improved, life-read, matmul, lu")
	luN := flag.Int("lu-n", 256, "LU matrix size (the graph is generated to fit it)")
	luR := flag.Int("lu-r", 64, "LU block size")
	flag.Parse()

	dot, err := buildDOT(*graph, *luN, *luR)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dps-graph:", err)
		os.Exit(1)
	}
	fmt.Print(dot)
}

func buildDOT(which string, luN, luR int) (string, error) {
	app, err := dps.NewLocal(dps.WithNodes("n0", "n1", "n2", "n3"))
	if err != nil {
		return "", err
	}
	defer app.Close()

	switch which {
	case "upper":
		g, err := buildUpper(app)
		if err != nil {
			return "", err
		}
		return g.DOT(), nil

	case "life-simple", "life-improved", "life-read":
		sim, err := parlife.New(app.Core(), 64, 64, parlife.Options{Name: "life", Workers: 4})
		if err != nil {
			return "", err
		}
		switch which {
		case "life-simple":
			g, _ := app.Graph("life-step-simple")
			return g.DOT(), nil
		case "life-improved":
			g, _ := app.Graph("life-step-improved")
			return g.DOT(), nil
		default:
			return sim.ReadGraph().DOT(), nil
		}

	case "matmul":
		mm, err := parlin.NewMatmul(app.Core(), parlin.MatmulOptions{Name: "matmul", Workers: 3})
		if err != nil {
			return "", err
		}
		return mm.Graph().DOT(), nil

	case "lu":
		lu, err := parlin.NewLU(app.Core(), luN, luR, parlin.LUOptions{Name: "lu", Pipelined: true})
		if err != nil {
			return "", err
		}
		return lu.Graph().DOT(), nil

	default:
		return "", fmt.Errorf("unknown graph %q (choose upper, life-simple, life-improved, life-read, matmul, lu)", which)
	}
}

// buildUpper assembles the tutorial uppercase chain on the given app.
func buildUpper(app *dps.App) (dps.Graph[*strToken, *strToken], error) {
	main := dps.MustCollection[struct{}](app, "main")
	if err := main.Map("n0"); err != nil {
		return dps.Graph[*strToken, *strToken]{}, err
	}
	compute := dps.MustCollection[struct{}](app, "compute")
	if err := compute.Map("n1 n2 n3"); err != nil {
		return dps.Graph[*strToken, *strToken]{}, err
	}
	split := dps.Split("SplitString", main, dps.MainRoute(),
		func(c *dps.Ctx, in *strToken, post func(*chrToken)) {
			for i := 0; i < len(in.Str); i++ {
				post(&chrToken{Chr: in.Str[i], Pos: i})
			}
		})
	upper := dps.Leaf("ToUpperCase", compute,
		dps.ByKey[*chrToken]("RoundRobinRoute", func(in *chrToken) int { return in.Pos }),
		func(c *dps.Ctx, in *chrToken) *chrToken { return in })
	merge := dps.Merge("MergeString", main, dps.MainRoute(),
		func(c *dps.Ctx, first *chrToken, next func() (*chrToken, bool)) *strToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &strToken{}
		})
	return dps.Build(app, "upper", dps.Then(dps.Then(dps.Chain(split), upper), merge))
}
