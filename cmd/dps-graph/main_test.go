package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dps"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestUpperGolden pins the DOT rendering of the tutorial graph. Regenerate
// with: go test ./cmd/dps-graph -update
func TestUpperGolden(t *testing.T) {
	got, err := buildDOT("upper", 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "upper.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("DOT output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// Hostile-name tokens for the escaping test.
type escTok struct {
	N int
}

var _ = dps.Register[escTok]()

// TestDOTEscapesHostileNames: operation, collection and route names
// containing quotes, backslashes and newlines must emit valid Graphviz —
// every label stays inside its quoted string.
func TestDOTEscapesHostileNames(t *testing.T) {
	app, err := dps.NewLocal(dps.WithNodes("n0"))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	tc := dps.MustCollection[struct{}](app, `col"quoted`)
	if err := tc.Map("n0"); err != nil {
		t.Fatal(err)
	}
	leaf := dps.Leaf("op\"s \\ tricky\nname", tc,
		dps.RouteFn(`route"r\`, func(tok dps.Token, rc dps.RouteCtx) int { return 0 }),
		func(c *dps.Ctx, in *escTok) *escTok { return in })
	g := dps.MustBuild(app, `graph"name\`, dps.Chain(leaf))

	dot := g.DOT()
	for _, want := range []string{
		`digraph "graph\"name\\" {`,
		`label="op\"s \\ tricky\nname\n(`, // quote, backslash and newline escaped inside the label
		`col\"quoted`,
		`route\"r\\`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Structural sanity: with all escapes applied, every line must close
	// each double-quoted string it opens (backslash escapes the next rune).
	for _, line := range strings.Split(dot, "\n") {
		inString := false
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case '\\':
				if inString {
					i++ // the escaped rune is part of the string
				}
			case '"':
				inString = !inString
			}
		}
		if inString {
			t.Errorf("unterminated quoted string in DOT line %q", line)
		}
	}
}
