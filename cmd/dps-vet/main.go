// Command dps-vet runs the project's static-analysis suite (see
// internal/analysis) over the tree and exits non-zero on any finding.
//
// Usage:
//
//	dps-vet [flags] [packages]
//
// Packages default to ./... relative to -dir. Findings print one per line
// as file:line: rule: message. Suppress a finding with a justified
// directive on its line or the line above:
//
//	//dpsvet:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dps-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module directory to analyze from")
	syntaxOnly := fs.Bool("syntax-only", false, "skip type-checking (faster, slightly less precise)")
	tests := fs.Bool("tests", true, "include _test.go files")
	list := fs.Bool("rules", false, "list the rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rules := analysis.ProjectRules()
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, analysis.LoadConfig{SyntaxOnly: *syntaxOnly, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "dps-vet: %v\n", err)
		return 2
	}
	findings := analysis.Run(pkgs, rules)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dps-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
