package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolation builds a throwaway module whose one package imports
// the sealed engine directly and runs dps-vet end to end over it: the
// boundary finding must print and the exit code must be non-zero.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vettest\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "app.go"), `package app

import _ "repro/internal/core"
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "-syntax-only", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "boundary: import of sealed package repro/internal/core") {
		t.Errorf("stdout = %q, want a boundary finding", stdout.String())
	}
}

// TestRealTreeClean is the acceptance gate: the suite over this repository
// itself, test files included, must produce zero findings.
func TestRealTreeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dps-vet on the real tree: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRulesFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-rules: exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"boundary", "lockheld", "poolown", "wirekinds", "determinism"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-rules output missing %q:\n%s", name, stdout.String())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
