// Command dps-gateway fronts a DPS deployment with an HTTP ingress: it
// multiplexes many concurrent HTTP requests onto Graph.Call invocations of a
// split–compute–merge application running over real TCP kernels, applying
// the serve-path protections of the engine — an in-flight call budget that
// sheds excess load at admission (HTTP 429), per-call deadlines under the
// deadline-aware flow policy (HTTP 504 when exceeded), and the sharded
// pending-call registry that keeps thousands of concurrent calls cheap.
//
// The default mode embeds a full deployment in one process for easy driving
// with curl or hey: a name server plus -nodes TCP kernels on loopback, with
// the gateway's application attached to every kernel and its worker threads
// striped across them.
//
//	dps-gateway -listen 127.0.0.1:8080 -nodes 3
//	hey -z 10s -c 200 -m POST -d "dynamic parallel schedules" http://127.0.0.1:8080/call
//	curl -d "hello gateway" http://127.0.0.1:8080/call
//	curl http://127.0.0.1:8080/statsz
//
// Endpoints:
//
//	POST /call    body is the request text; the response body is the result.
//	              429 Retry-After when the call budget is exhausted,
//	              504 when the per-call deadline expires.
//	GET  /healthz 200 while the engine is healthy, 503 after a fatal error.
//	GET  /statsz  engine statistics plus the live in-flight call count.
//	GET  /metrics the same state in the Prometheus text exposition format:
//	              every engine counter, live gauges, and the call-latency
//	              histogram (plus queue waits when -trace-sample is set).
//	GET  /debug/pprof/  the standard net/http/pprof profiles.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/dps"
	"repro/internal/kernel"
)

// Tokens of the gateway application.
type gwReq struct {
	Text string
}

type gwWord struct {
	Word string
	Pos  int
}

type gwRes struct {
	Text string
}

var (
	_ = dps.Register[gwReq]()
	_ = dps.Register[gwWord]()
	_ = dps.Register[gwRes]()
)

// gatewayConfig collects the tunables of the serve path.
type gatewayConfig struct {
	nodes       int           // loopback TCP kernels to embed
	deadline    time.Duration // per-call deadline
	maxInflight int           // admission budget (0 = unbounded)
	shards      int           // pending-call registry shards (0 = default)
	window      int           // per-split flow-control window (0 = default)
	workers     int           // scheduler worker lanes per node
	batch       bool          // coalesce small tokens into wire frames
	traceSample float64       // fraction of calls to trace (0 = off)
}

// gateway is the HTTP ingress over one deployment. The call indirection
// exists for the handler tests: the HTTP status mapping is exercised
// against injected engine errors without a saturated deployment.
type gateway struct {
	cfg   gatewayConfig
	app   *dps.App
	call  func(ctx context.Context, text string) (string, error)
	close func()
}

// newGateway starts the embedded deployment — name server, cfg.nodes TCP
// kernels on loopback, one engine application attached to all of them — and
// builds the split→upper→merge graph with worker threads striped across
// every kernel.
func newGateway(cfg gatewayConfig) (*gateway, error) {
	if cfg.nodes < 1 {
		return nil, fmt.Errorf("dps-gateway: need at least one node, got %d", cfg.nodes)
	}
	ns, err := kernel.StartNameServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cleanup := []func(){func() { _ = ns.Close() }}
	fail := func(err error) (*gateway, error) {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
		return nil, err
	}
	kernels := make([]*kernel.Kernel, cfg.nodes)
	for i := range kernels {
		k, err := kernel.Start(fmt.Sprintf("gw%d", i), "127.0.0.1:0", ns.Addr())
		if err != nil {
			return fail(err)
		}
		kernels[i] = k
		cleanup = append(cleanup, func() { _ = k.Close() })
	}
	opts := []dps.Option{
		dps.WithWorkers(cfg.workers),
		dps.WithCallShards(cfg.shards),
		dps.WithMaxInFlightCalls(cfg.maxInflight),
		dps.WithFlowPolicy(dps.DeadlinePolicy(cfg.window, 0)),
	}
	if cfg.batch {
		opts = append(opts, dps.WithBatch(0, 0, 0))
	}
	if cfg.traceSample > 0 {
		opts = append(opts, dps.WithTraceSampling(cfg.traceSample))
	}
	app, err := dps.Connect(kernels[0].Transport("gateway"), opts...)
	if err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, app.Close)
	for _, k := range kernels[1:] {
		if err := app.Attach(k.Transport("gateway")); err != nil {
			return fail(err)
		}
	}

	main := dps.MustCollection[struct{}](app, "main")
	if err := main.Map(kernels[0].Name()); err != nil {
		return fail(err)
	}
	workers := dps.MustCollection[struct{}](app, "workers")
	stripe := make([]string, 0, 2*cfg.nodes)
	for range 2 {
		for _, k := range kernels {
			stripe = append(stripe, k.Name())
		}
	}
	if err := workers.MapNodes(stripe...); err != nil {
		return fail(err)
	}

	split := dps.Split("split-words", main, dps.MainRoute(),
		func(c *dps.Ctx, in *gwReq, post func(*gwWord)) {
			for i, w := range strings.Fields(in.Text) {
				post(&gwWord{Word: w, Pos: i})
			}
		})
	upper := dps.Leaf("upper", workers, dps.RoundRobin(),
		func(c *dps.Ctx, in *gwWord) *gwWord {
			return &gwWord{Word: strings.ToUpper(in.Word), Pos: in.Pos}
		})
	merge := dps.Merge("join-words", main, dps.MainRoute(),
		func(c *dps.Ctx, first *gwWord, next func() (*gwWord, bool)) *gwRes {
			words := map[int]string{}
			max := 0
			for in, ok := first, true; ok; in, ok = next() {
				words[in.Pos] = in.Word
				if in.Pos > max {
					max = in.Pos
				}
			}
			out := make([]string, max+1)
			for i := range out {
				out[i] = words[i]
			}
			return &gwRes{Text: strings.Join(out, " ")}
		})
	g, err := dps.Build(app, "gateway-upper",
		dps.Then(dps.Then(dps.Chain(split), upper), merge))
	if err != nil {
		return fail(err)
	}

	gw := &gateway{
		cfg: cfg,
		app: app,
		call: func(ctx context.Context, text string) (string, error) {
			out, err := g.Call(ctx, &gwReq{Text: text})
			if err != nil {
				return "", err
			}
			return out.Text, nil
		},
		close: func() {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
		},
	}
	return gw, nil
}

// handler routes the three endpoints. Every /call runs under the gateway's
// per-call deadline on top of whatever deadline the client connection
// already carries.
func (gw *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/call", gw.handleCall)
	mux.HandleFunc("/healthz", gw.handleHealthz)
	mux.HandleFunc("/statsz", gw.handleStatsz)
	mux.Handle("/metrics", gw.app.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (gw *gateway) handleCall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a text body to /call", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), gw.cfg.deadline)
	defer cancel()
	out, err := gw.call(ctx, string(body))
	switch {
	case err == nil:
		fmt.Fprintln(w, out)
	case errors.Is(err, dps.ErrOverload):
		// Shed at admission: nothing was posted, the client should retry
		// after a short backoff.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in the nginx tradition.
		http.Error(w, err.Error(), 499)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (gw *gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := gw.app.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (gw *gateway) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		PendingCalls int        `json:"pending_calls"`
		Stats        *dps.Stats `json:"stats"`
	}{gw.app.PendingCalls(), gw.app.Stats()})
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	nodes := flag.Int("nodes", 3, "loopback TCP kernels to embed")
	deadline := flag.Duration("deadline", 2*time.Second, "per-call deadline")
	maxInflight := flag.Int("max-inflight", 2048, "in-flight call budget; beyond it calls shed with 429 (0 = unbounded)")
	shards := flag.Int("shards", 0, "pending-call registry shards (0 = engine default)")
	window := flag.Int("window", 0, "per-split flow-control window (0 = engine default)")
	workers := flag.Int("workers", 0, "scheduler worker lanes per node (0 = per-instance drainers)")
	batch := flag.Bool("batch", true, "coalesce small tokens into wire frames")
	traceSample := flag.Float64("trace-sample", 0, "fraction of calls to trace (0..1); sampled timelines via App.TraceSpans")
	flag.Parse()

	gw, err := newGateway(gatewayConfig{
		nodes:       *nodes,
		deadline:    *deadline,
		maxInflight: *maxInflight,
		shards:      *shards,
		window:      *window,
		workers:     *workers,
		batch:       *batch,
		traceSample: *traceSample,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dps-gateway:", err)
		os.Exit(1)
	}
	defer gw.close()

	srv := &http.Server{Addr: *listen, Handler: gw.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("dps-gateway listening on http://%s (%d kernels, budget %d, deadline %v)\n",
		*listen, *nodes, *maxInflight, *deadline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dps-gateway:", err)
		os.Exit(1)
	case <-sig:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}
