package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dps"
)

// TestGatewayEndToEnd drives the real thing: an embedded 3-kernel TCP
// deployment behind the HTTP ingress, hit with concurrent POST /call
// requests.
func TestGatewayEndToEnd(t *testing.T) {
	gw, err := newGateway(gatewayConfig{
		nodes:       3,
		deadline:    10 * time.Second,
		maxInflight: 256,
		batch:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/call", "text/plain",
		strings.NewReader("dynamic parallel schedules over tcp kernels"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /call: status %d", resp.StatusCode)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/call", "text/plain",
				strings.NewReader(fmt.Sprintf("concurrent request number %d", i)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			var out strings.Builder
			buf := make([]byte, 256)
			for {
				n, err := resp.Body.Read(buf)
				out.Write(buf[:n])
				if err != nil {
					break
				}
			}
			want := fmt.Sprintf("CONCURRENT REQUEST NUMBER %d\n", i)
			if out.String() != want {
				errs <- fmt.Errorf("request %d: got %q, want %q", i, out.String(), want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		PendingCalls int `json:"pending_calls"`
		Stats        struct {
			CallsCompleted int64 `json:"CallsCompleted"`
			CallsAdmitted  int64 `json:"CallsAdmitted"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats.CallsCompleted < 33 || stats.Stats.CallsAdmitted < 33 {
		t.Fatalf("statsz: completed %d admitted %d, want >= 33 each",
			stats.Stats.CallsCompleted, stats.Stats.CallsAdmitted)
	}
	if stats.PendingCalls != 0 {
		t.Fatalf("statsz: %d calls pending after the drain", stats.PendingCalls)
	}
}

// TestGatewayStatusMapping checks the overload contract of the HTTP edge
// against injected engine errors: budget exhaustion surfaces as 429 with a
// Retry-After, an expired per-call deadline as 504, a vanished client as
// 499, anything else as 500.
func TestGatewayStatusMapping(t *testing.T) {
	gw, err := newGateway(gatewayConfig{nodes: 1, deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()

	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter bool
	}{
		{"overload", fmt.Errorf("dps: graph %q: %w", "gateway-upper", dps.ErrOverload), http.StatusTooManyRequests, true},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{"canceled", context.Canceled, 499, false},
		{"engine", fmt.Errorf("dps: node lost"), http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gw.call = func(ctx context.Context, text string) (string, error) { return "", tc.err }
			rec := httptest.NewRecorder()
			gw.handleCall(rec, httptest.NewRequest(http.MethodPost, "/call", strings.NewReader("x")))
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d", rec.Code, tc.status)
			}
			if tc.retryAfter && rec.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		})
	}

	gw.call = func(ctx context.Context, text string) (string, error) { return strings.ToUpper(text), nil }
	rec := httptest.NewRecorder()
	gw.handleCall(rec, httptest.NewRequest(http.MethodGet, "/call", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /call: status %d, want 405", rec.Code)
	}
}

// TestGatewayOverloadSheds saturates a budget of one with concurrent
// requests and requires the real admission path to shed with 429 while
// accepted calls complete with 200 — the overload contract end to end.
func TestGatewayOverloadSheds(t *testing.T) {
	gw, err := newGateway(gatewayConfig{
		nodes:       1,
		deadline:    5 * time.Second,
		maxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	var sawOK, sawShed bool
	for round := 0; round < 50 && !(sawOK && sawShed); round++ {
		codes := make(chan int, 16)
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/call", "text/plain",
					strings.NewReader("saturate the single slot"))
				if err != nil {
					codes <- -1
					return
				}
				resp.Body.Close()
				codes <- resp.StatusCode
			}()
		}
		wg.Wait()
		close(codes)
		for code := range codes {
			switch code {
			case http.StatusOK:
				sawOK = true
			case http.StatusTooManyRequests:
				sawShed = true
			default:
				t.Fatalf("status %d, want 200 or 429", code)
			}
		}
	}
	if !sawOK || !sawShed {
		t.Fatalf("16-way concurrency on a budget of one: ok=%v shed=%v, want both", sawOK, sawShed)
	}
	if pending := gw.app.PendingCalls(); pending != 0 {
		t.Fatalf("%d calls pending after the drain", pending)
	}
}
