// Package repro is a Go reproduction of "DPS – Dynamic Parallel Schedules"
// (Gerlach & Hersch, HIPS/IPDPS 2003): a framework for parallel
// applications on distributed-memory clusters built from compositional
// split-compute-merge flow graphs.
//
// The library lives in internal/core (the DPS model) with one package per
// substrate (serialization, simulated cluster network, transports, kernel
// runtime, dense linear algebra, Game of Life). Executables are under cmd/,
// runnable examples under examples/, and the root bench_test.go regenerates
// every table and figure of the paper's evaluation. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro
